#pragma once
// PCM memory controller: FRFCFS with separate 32-entry read/write queues
// (Table II). Reads have priority; writes drain when the write queue fills
// (the paper's "variable FRFCFS ... services the write requests only when
// the write queue is full"), which is exactly what makes write latency
// long for read-dominant workloads (Section V.B.3). An opportunistic
// drain policy is provided as an ablation.
//
// Scheduling is bank-indexed: every queued request lives in one pooled
// node threaded onto an age-ordered global FIFO *and* a per-subarray
// (reads) or per-bank (writes) FIFO, with bitmaps tracking which buckets
// are non-empty. A scheduling decision then inspects only per-bank list
// heads/cursors — O(banks) instead of O(queue) — and batch formation
// walks a single bank's list. The selection is provably order-identical
// to a linear FRFCFS sweep of the global queue (the pre-index
// implementation survives as the differential-test oracle in
// tests/reference_controller.hpp). Two ablation features re-enable the
// exact age-ordered sweep over the same structures, because they mutate
// state mid-sweep in ways an up-front index cannot see:
//  * write pausing — a blocked read may preempt the in-service write
//    while the sweep is mid-flight;
//  * Start-Gap wear leveling — gap moves triggered by an issued write
//    remap queued requests' physical (bank, subarray) between sweep
//    steps, which is also why the legacy begin() restart after a batch
//    erase is preserved only on this path.
//
// PCM has no row buffer to exploit, so FRFCFS degenerates to
// oldest-first over requests whose bank is idle; the "row hit first" rule
// never fires for the paper configuration. The controller still tracks
// each bank's open row (last-activated) in O(1) per issue: it feeds the
// mem.row_hits/row_misses locality stats, and the opt-in `row_hit_first`
// knob steers same-row requests first for DRAM-like front-ends.
//
// Optional substrate features from the paper's related work:
//  * write pausing (ref [24]): a long write in service is paused at
//    write-unit boundaries when a read arrives for its bank, and resumed
//    once no reads are waiting there;
//  * Start-Gap wear leveling (ref [5]): logical lines rotate through
//    physical slots; gap movements cost an internal migration write.

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "tw/common/inline_vec.hpp"
#include "tw/common/intrusive_list.hpp"
#include "tw/common/types.hpp"
#include "tw/fault/fault_model.hpp"
#include "tw/mem/address_map.hpp"
#include "tw/mem/data_store.hpp"
#include "tw/mem/interface.hpp"
#include "tw/mem/request.hpp"
#include "tw/mem/start_gap.hpp"
#include "tw/pcm/bank.hpp"
#include "tw/pcm/energy.hpp"
#include "tw/pcm/pump.hpp"
#include "tw/pcm/wear.hpp"
#include "tw/schemes/write_scheme.hpp"
#include "tw/sim/simulator.hpp"
#include "tw/stats/registry.hpp"

namespace tw::mem {

/// Partition-level parallelism (PALP, arXiv:1908.07966): treat the bank's
/// charge pump as a budget-consuming resource shared by per-partition
/// write drivers instead of a binary bank lock. Requires
/// `subarrays_per_bank > 1` to have any effect (single-partition banks
/// stay on the legacy serialized path bit-identically).
struct PalpConfig {
  bool enabled = false;
  /// Partition writes allowed to draw from the pump concurrently. Each
  /// concurrent way plans against budget/write_ways (the pump splits its
  /// current evenly across active write drivers).
  u32 write_ways = 2;
  /// PALP's read-after-write-current limit: reads admitted per bank while
  /// the pump is loaded. 0 = reads wait for the pump to unload.
  u32 max_rww_reads = 2;
};

/// Controller policy knobs.
struct ControllerConfig {
  u32 read_queue_entries = 32;
  u32 write_queue_entries = 32;

  /// When to issue writes.
  enum class DrainPolicy : u8 {
    kStrict,         ///< only when the write queue is full (paper)
    kOpportunistic,  ///< also when no reads are pending
  };
  DrainPolicy drain = DrainPolicy::kStrict;
  /// Once draining starts, keep draining until the queue falls to this.
  u32 drain_low_watermark = 16;

  /// Channel transfer time for one line of read data.
  Tick read_bus_time = ns(8);
  /// Latency of a read forwarded from the write queue.
  Tick forward_latency = ns(5);

  bool write_coalescing = true;   ///< merge writes to the same line in-queue
  bool read_forwarding = true;    ///< serve reads from queued write data

  /// Pause an in-service write at the next write-unit boundary when a
  /// read arrives for its bank (Qureshi et al., HPCA'10 / paper ref [24]).
  bool write_pausing = false;
  /// Pause boundary granularity (default: one write unit, Tset).
  Tick pause_quantum = ns(430);

  /// Start-Gap wear leveling (paper ref [5]); regions are carved from the
  /// line index space.
  bool wear_leveling = false;
  StartGapConfig start_gap;

  /// Batched writes: hand up to this many queued same-bank writes to the
  /// scheme at once (batched Tetris packs their units jointly; other
  /// schemes serialize internally). Batches are not pausable.
  u32 write_batch = 1;

  /// Prefer requests hitting a bank's open (last-activated) row over
  /// strictly-oldest selection. A no-op for the paper's closed-row PCM
  /// array (kept off there so schedules stay bit-identical to the
  /// reference FRFCFS); DRAM-like front-ends can enable it.
  bool row_hit_first = false;

  /// Partition-level parallelism knobs (read-while-write and concurrent
  /// partition writes inside a bank). Mutually exclusive with
  /// write_pausing: pausing models pump preemption, PALP models pump
  /// sharing — composing them would double-count the pump.
  PalpConfig palp;

  /// Added to every trace-track instance index this controller emits.
  /// MemorySystem gives channel c a base of c * 4096 so per-channel bank,
  /// queue and FSM tracks stay distinct in one merged trace. 0 (the
  /// default) keeps single-channel traces byte-identical to before.
  u32 track_base = 0;

  bool valid() const {
    return read_queue_entries > 0 && write_queue_entries > 0 &&
           drain_low_watermark < write_queue_entries &&
           (!write_pausing || pause_quantum > 0) &&
           (!wear_leveling || start_gap.valid()) && write_batch >= 1 &&
           (!palp.enabled || (!write_pausing && palp.write_ways >= 1));
  }
};

/// The memory controller + PCM bank array + content store, wired into an
/// event-driven Simulator. One instance models one channel.
class Controller : public MemoryInterface {
 public:
  using ReadCallback = MemoryInterface::ReadCallback;
  using WriteCallback = MemoryInterface::WriteCallback;
  using SpaceCallback = MemoryInterface::SpaceCallback;

  /// The scheme is shared (not owned); it must outlive the controller.
  /// `ones_bias` seeds the first-touch memory content distribution.
  /// `fault`, when non-null, injects transient pulse failures (priced as
  /// verify-and-retry sub-requests), charge-pump brown-outs (shrunken
  /// plan budgets) and stuck-bank remapping; it must outlive the
  /// controller. Null keeps every code path bit-identical to a fault-free
  /// build.
  Controller(sim::Simulator& sim, const pcm::PcmConfig& pcm_cfg,
             ControllerConfig cfg, schemes::WriteScheme& scheme,
             stats::Registry& registry, u64 data_seed = 1,
             double ones_bias = 0.5,
             const fault::FaultModel* fault = nullptr);

  /// Try to accept a request. Returns false when the target queue is full
  /// (the caller should wait for the space callback and retry).
  bool enqueue(MemoryRequest req) override;

  /// Invoked when a read's data returns.
  void set_read_callback(ReadCallback cb) override { on_read_ = std::move(cb); }
  /// Invoked when a write completes service (informational).
  void set_write_callback(WriteCallback cb) override {
    on_write_ = std::move(cb);
  }
  /// Invoked whenever queue space frees up.
  void set_space_callback(SpaceCallback cb) override {
    on_space_ = std::move(cb);
  }

  /// True when both queues are empty and all banks idle (quiesced).
  bool idle() const override;

  u32 read_queue_depth() const { return read_age_.size(); }
  u32 write_queue_depth() const { return write_age_.size(); }
  bool write_queue_full() const {
    return write_age_.size() >= cfg_.write_queue_entries;
  }

  /// Deepest the read/write queues ever got (for queue-stat invariants).
  u32 read_queue_peak() const { return read_q_peak_; }
  u32 write_queue_peak() const { return write_q_peak_; }

  /// Physical line address a logical line currently maps to (identity
  /// unless wear leveling is on). Exposed for tests and wear reports.
  Addr physical_of(Addr logical_line_addr);

  DataStore& store() { return store_; }
  DataStore& store_for(Addr) override { return store_; }
  const pcm::EnergyModel& energy() const { return energy_; }
  const pcm::WearTracker& wear() const { return wear_; }
  const AddressMap& address_map() const { return map_; }
  const std::vector<pcm::PcmBank>& banks() const { return banks_; }
  const std::vector<pcm::PcmBank>& subarrays() const { return subarrays_; }
  const std::vector<pcm::ChargePump>& pumps() const { return pumps_; }
  /// True when PALP admission is live (enabled and the geometry has more
  /// than one partition per bank to overlap).
  bool palp_active() const { return palp_on_; }
  u64 gap_moves() const;

 private:
  /// One queued request: the payload plus its memberships in the global
  /// age FIFO and its (bank or subarray) bucket FIFO.
  struct ReqNode {
    MemoryRequest req;
    ListLink by_age;     ///< global FIFO over all queued reads or writes
    ListLink by_bucket;  ///< per-subarray (reads) / per-bank (writes) FIFO
    u32 bucket = 0;      ///< bucket id fixed at enqueue (erase consistency)
  };
  using NodePool = ChunkPool<ReqNode>;
  using AgeList = IndexList<ReqNode, &ReqNode::by_age>;
  using BucketList = IndexList<ReqNode, &ReqNode::by_bucket>;

  /// Bookkeeping for a write currently occupying a bank (pausing).
  struct ActiveWrite {
    MemoryRequest req;
    Tick start = 0;
    Tick end = 0;
    u64 epoch = 0;
    Tick service = 0;   ///< full service time of this write
    u32 subarray = 0;   ///< flat subarray the write is programming
  };
  /// A write paused mid-service awaiting resumption.
  struct PausedWrite {
    MemoryRequest req;
    Tick remaining = 0;
    u32 subarray = 0;
  };
  /// One partition write in flight under PALP (several may share a bank,
  /// so the single active_write_ slot does not apply; epochs key the
  /// completion events).
  struct PalpWrite {
    MemoryRequest req;
    u64 epoch = 0;
    Tick service = 0;
    u32 subarray = 0;
  };
  /// Last row activated in a bank (closed-row PCM: locality stats and
  /// the opt-in row_hit_first steering).
  struct OpenRow {
    u64 row = 0;
    bool valid = false;
  };

  void dispatch();
  void dispatch_reads_indexed(Tick now);
  void dispatch_reads_exact(Tick now);
  void dispatch_writes_indexed(Tick now);
  void dispatch_writes_exact(Tick now);
  void schedule_dispatch();

  // Node plumbing. enqueue_* link a freshly filled node into both lists
  // and maintain the non-empty bitmaps; unlink_* do the reverse. The node
  // id is released back to the pool by take_node.
  u32 make_node(MemoryRequest&& req, u32 bucket);
  MemoryRequest take_node(u32 id);
  void link_read(u32 id);
  void unlink_read(u32 id);
  void link_write(u32 id);
  void unlink_write(u32 id);

  /// Oldest issuable read in subarray `sub` (its list head), or the oldest
  /// open-row hit when row_hit_first is set. kNilIndex if none. `hit_out`
  /// reports whether the pick is an open-row hit.
  u32 read_cursor(u32 sub, bool* hit_out) const;
  /// Oldest issuable write in bank `bank` at `now` scanning from node
  /// `from` (kNilIndex = list head); honors row_hit_first. kNilIndex if
  /// none. `hit_out` reports whether the pick is an open-row hit.
  u32 write_cursor(u32 bank, u32 from, Tick now, bool* hit_out) const;

  bool row_hit(u32 bank, Addr phys) const;
  void note_row_activate(u32 bank, Addr phys);

  /// Park a completed-read result; the completion event captures the slot.
  u32 acquire_read_slot(MemoryRequest&& req);
  MemoryRequest take_read_slot(u32 slot);
  void issue_read(MemoryRequest req);
  void issue_write(MemoryRequest req, Tick service_override = 0);
  void issue_write_batch(std::vector<MemoryRequest> reqs);
  void complete_write(u32 bank, u64 epoch);
  void complete_palp_write(u32 bank, u64 epoch);

  // PALP admission. Allowances shrink inside charge-pump brown-out
  // windows (the fault ladder's budget factor scales concurrency the
  // same way it scales the packing budget).
  u32 palp_write_allowance(Tick now) const;
  u32 rww_allowance(Tick now) const;
  bool palp_read_admissible(u32 bank, Tick now) const;
  /// Can a (single) write start drawing on `bank`'s pump at `now`?
  /// Legacy mode: the binary bank lock. PALP: pump way admission.
  bool bank_ready_for_write(u32 bank, Tick now) const;
  /// Count + trace a read held back by the read-after-write-current cap.
  void note_palp_stall(u32 bank, Tick now);
  /// Plan scope for a PALP partition write: the brown-out factor divided
  /// across the pump's write ways. Ended with end_plan_scope().
  double begin_palp_plan_scope(Tick now);
  bool try_pause(u32 bank, u32 wanted_subarray);
  void resume_paused(u32 bank);
  bool read_waiting_for_subarray(u32 subarray);
  /// Flip drain mode, emitting a trace record on every transition.
  void set_draining(bool on);
  void notify_space();
  StartGapLeveler& leveler_for(u64 region);
  void apply_gap_move(u64 region, const GapMove& move);

  /// Effective (possibly stuck-bank-remapped) flat bank of a physical
  /// address. With no stuck banks these are the raw decode — the remap
  /// indirection is only consulted when fault_remap_ is set, which also
  /// forces the exact (non-indexed) dispatch paths.
  u32 eff_bank(Addr phys) const {
    const u32 b = map_.flat_bank(phys);
    return fault_remap_ ? fault_->remap_bank(b) : b;
  }
  /// Effective flat subarray: the same local subarray inside eff_bank.
  u32 eff_sub(Addr phys) const {
    const u32 s = map_.flat_subarray(phys);
    if (!fault_remap_) return s;
    const u32 b = map_.flat_bank(phys);
    const u32 t = fault_->remap_bank(b);
    return s + (t - b) * map_.subarrays_per_bank();
  }
  /// Count + trace a service redirected off a stuck bank (issue paths).
  void note_stuck_remap(Addr phys);
  /// Brown-out handling around a scheme plan call: shrink the scheme's
  /// budget for writes planned inside a brown-out window. Returns the
  /// factor applied; pass it to end_plan_scope() after the plan (and any
  /// fault pricing that must see the same budget) completes.
  double begin_plan_scope(Tick now);
  void end_plan_scope(double factor);
  /// Inject transient pulse failures into one planned line write:
  /// verify-and-retry pricing, retry energy/wear, FailedLine surfacing.
  /// Returns the extra service latency.
  Tick apply_line_faults(Addr phys, const schemes::ServicePlan& plan);

  sim::Simulator& sim_;
  pcm::PcmConfig pcm_;
  ControllerConfig cfg_;
  schemes::WriteScheme& scheme_;
  stats::Registry& reg_;
  const fault::FaultModel* fault_;
  bool fault_remap_;   ///< any bank stuck: redirect traffic, exact paths
  u64 fault_seq_ = 0;  ///< per-service ordinal feeding fault site hashes

  AddressMap map_;
  DataStore store_;
  std::vector<pcm::PcmBank> banks_;      ///< write serialization (charge pump)
  std::vector<pcm::PcmBank> subarrays_;  ///< array occupancy (reads + writes)
  std::vector<pcm::ChargePump> pumps_;   ///< PALP pump occupancy, per bank
  pcm::EnergyModel energy_;
  pcm::WearTracker wear_;

  // Bank-indexed request queues: pooled nodes on a global age FIFO plus
  // per-subarray (reads) / per-bank (writes) FIFOs, with bitmaps of
  // non-empty buckets maintained on enqueue/issue.
  NodePool nodes_;
  AgeList read_age_;
  AgeList write_age_;
  std::vector<BucketList> read_by_sub_;
  std::vector<BucketList> write_by_bank_;
  std::vector<u64> subs_with_reads_;    ///< bitmap over flat subarray ids
  std::vector<u64> banks_with_writes_;  ///< bitmap over flat bank ids
  /// True when physical (bank, subarray) of a queued request cannot change
  /// while queued (wear leveling off): enables the indexed fast paths.
  bool static_mapping_ = true;

  /// Scratch for one read-dispatch round: the head of each ready
  /// subarray bucket. Reserved to total_subarrays in the constructor so
  /// dispatch never allocates.
  struct ReadCursor {
    u32 node;
    u32 sub;
    bool hit;
  };
  std::vector<ReadCursor> read_ready_;

  std::vector<OpenRow> open_row_;  ///< per-bank last-activated row

  bool draining_ = false;
  bool dispatch_scheduled_ = false;
  bool space_scheduled_ = false;
  u64 next_id_ = 1;
  u64 inflight_ = 0;  ///< issued commands not yet complete
  u32 read_q_peak_ = 0;
  u32 write_q_peak_ = 0;

  // Write pausing state, indexed by flat bank id.
  std::vector<std::optional<ActiveWrite>> active_write_;
  std::vector<std::optional<PausedWrite>> paused_write_;
  std::vector<u64> bank_epoch_;
  u32 paused_count_ = 0;  ///< banks with a paused write (O(1) idle check)

  /// PALP: concurrent partition writes in flight, per flat bank. Live
  /// only when palp_on_ (legacy mode keeps the single active_write_
  /// slot); bounded by palp.write_ways entries per bank.
  std::vector<std::vector<PalpWrite>> palp_active_;
  /// cfg_.palp.enabled gated on a multi-partition geometry: with one
  /// subarray per bank there is nothing to overlap, and forcing the
  /// legacy path keeps partitions=1 runs bit-identical whatever the
  /// palp.* knobs say.
  bool palp_on_ = false;

  // Wear leveling state: flat array indexed by region id (regions are
  // dense under the bounded trace address spaces; entries materialize on
  // first touch).
  std::vector<std::optional<StartGapLeveler>> levelers_;

  // In-flight read results staged by slot: completion callbacks capture
  // one u32 instead of a full MemoryRequest, keeping them inside the
  // simulator's 48 B inline-callback budget (and allocation-free).
  std::vector<MemoryRequest> read_pool_;
  std::vector<u32> free_read_slots_;

  ReadCallback on_read_;
  WriteCallback on_write_;
  SpaceCallback on_space_;

  // Stats (owned by the registry).
  stats::Counter& c_reads_;
  stats::Counter& c_writes_;
  stats::Counter& c_forwarded_;
  stats::Counter& c_coalesced_;
  stats::Counter& c_silent_;
  stats::Counter& c_flipped_units_;
  stats::Counter& c_pauses_;
  stats::Counter& c_gap_moves_;
  stats::Counter& c_batched_;
  stats::Counter& c_row_hits_;
  stats::Counter& c_row_misses_;
  stats::Counter& c_dispatches_;
  stats::Counter& c_fault_retries_;
  stats::Counter& c_failed_lines_;
  stats::Counter& c_brownout_writes_;
  stats::Counter& c_stuck_remaps_;
  stats::Counter& c_palp_overlap_reads_;
  stats::Counter& c_palp_pump_stalls_;
  stats::Counter& c_palp_write_overlaps_;
  stats::Counter& c_enc_writes_;
  stats::Counter& c_enc_coded_units_;
  stats::Counter& c_enc_tag_bits_;
  stats::Accumulator& a_read_latency_;
  stats::Accumulator& a_write_latency_;
  stats::Accumulator& a_write_units_;
  stats::Accumulator& a_write_service_;
  stats::Accumulator& a_power_util_;
  stats::Accumulator& a_batch_lines_;
  stats::Accumulator& a_batch_occupancy_;
  stats::Accumulator& a_palp_batch_spread_;
  stats::Log2Histogram& h_read_latency_;
  stats::Log2Histogram& h_write_latency_;
};

}  // namespace tw::mem
