#pragma once
// PCM memory controller: FRFCFS with separate 32-entry read/write queues
// (Table II). Reads have priority; writes drain when the write queue fills
// (the paper's "variable FRFCFS ... services the write requests only when
// the write queue is full"), which is exactly what makes write latency
// long for read-dominant workloads (Section V.B.3). An opportunistic
// drain policy is provided as an ablation.
//
// PCM has no row buffer to exploit, so FRFCFS degenerates to
// oldest-first over requests whose bank is idle; the "row hit first" rule
// never fires. Bank-level parallelism and the per-scheme write service
// time do all the work.
//
// Optional substrate features from the paper's related work:
//  * write pausing (ref [24]): a long write in service is paused at
//    write-unit boundaries when a read arrives for its bank, and resumed
//    once no reads are waiting there;
//  * Start-Gap wear leveling (ref [5]): logical lines rotate through
//    physical slots; gap movements cost an internal migration write.

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "tw/common/types.hpp"
#include "tw/mem/address_map.hpp"
#include "tw/mem/data_store.hpp"
#include "tw/mem/request.hpp"
#include "tw/mem/start_gap.hpp"
#include "tw/pcm/bank.hpp"
#include "tw/pcm/energy.hpp"
#include "tw/pcm/wear.hpp"
#include "tw/schemes/write_scheme.hpp"
#include "tw/sim/simulator.hpp"
#include "tw/stats/registry.hpp"

namespace tw::mem {

/// Controller policy knobs.
struct ControllerConfig {
  u32 read_queue_entries = 32;
  u32 write_queue_entries = 32;

  /// When to issue writes.
  enum class DrainPolicy : u8 {
    kStrict,         ///< only when the write queue is full (paper)
    kOpportunistic,  ///< also when no reads are pending
  };
  DrainPolicy drain = DrainPolicy::kStrict;
  /// Once draining starts, keep draining until the queue falls to this.
  u32 drain_low_watermark = 16;

  /// Channel transfer time for one line of read data.
  Tick read_bus_time = ns(8);
  /// Latency of a read forwarded from the write queue.
  Tick forward_latency = ns(5);

  bool write_coalescing = true;   ///< merge writes to the same line in-queue
  bool read_forwarding = true;    ///< serve reads from queued write data

  /// Pause an in-service write at the next write-unit boundary when a
  /// read arrives for its bank (Qureshi et al., HPCA'10 / paper ref [24]).
  bool write_pausing = false;
  /// Pause boundary granularity (default: one write unit, Tset).
  Tick pause_quantum = ns(430);

  /// Start-Gap wear leveling (paper ref [5]); regions are carved from the
  /// line index space.
  bool wear_leveling = false;
  StartGapConfig start_gap;

  /// Batched writes: hand up to this many queued same-bank writes to the
  /// scheme at once (batched Tetris packs their units jointly; other
  /// schemes serialize internally). Batches are not pausable.
  u32 write_batch = 1;

  bool valid() const {
    return read_queue_entries > 0 && write_queue_entries > 0 &&
           drain_low_watermark < write_queue_entries &&
           (!write_pausing || pause_quantum > 0) &&
           (!wear_leveling || start_gap.valid()) && write_batch >= 1;
  }
};

/// The memory controller + PCM bank array + content store, wired into an
/// event-driven Simulator. One instance models one channel.
class Controller {
 public:
  using ReadCallback = std::function<void(const MemoryRequest&)>;
  using WriteCallback = std::function<void(const MemoryRequest&)>;
  using SpaceCallback = std::function<void()>;

  /// The scheme is shared (not owned); it must outlive the controller.
  /// `ones_bias` seeds the first-touch memory content distribution.
  Controller(sim::Simulator& sim, const pcm::PcmConfig& pcm_cfg,
             ControllerConfig cfg, schemes::WriteScheme& scheme,
             stats::Registry& registry, u64 data_seed = 1,
             double ones_bias = 0.5);

  /// Try to accept a request. Returns false when the target queue is full
  /// (the caller should wait for the space callback and retry).
  bool enqueue(MemoryRequest req);

  /// Invoked when a read's data returns.
  void set_read_callback(ReadCallback cb) { on_read_ = std::move(cb); }
  /// Invoked when a write completes service (informational).
  void set_write_callback(WriteCallback cb) { on_write_ = std::move(cb); }
  /// Invoked whenever queue space frees up.
  void set_space_callback(SpaceCallback cb) { on_space_ = std::move(cb); }

  /// True when both queues are empty and all banks idle (quiesced).
  bool idle() const;

  u32 read_queue_depth() const { return static_cast<u32>(read_q_.size()); }
  u32 write_queue_depth() const { return static_cast<u32>(write_q_.size()); }
  bool write_queue_full() const {
    return write_q_.size() >= cfg_.write_queue_entries;
  }

  /// Physical line address a logical line currently maps to (identity
  /// unless wear leveling is on). Exposed for tests and wear reports.
  Addr physical_of(Addr logical_line_addr);

  DataStore& store() { return store_; }
  const pcm::EnergyModel& energy() const { return energy_; }
  const pcm::WearTracker& wear() const { return wear_; }
  const AddressMap& address_map() const { return map_; }
  const std::vector<pcm::PcmBank>& banks() const { return banks_; }
  const std::vector<pcm::PcmBank>& subarrays() const { return subarrays_; }
  u64 gap_moves() const;

 private:
  /// Bookkeeping for a write currently occupying a bank (pausing).
  struct ActiveWrite {
    MemoryRequest req;
    Tick start = 0;
    Tick end = 0;
    u64 epoch = 0;
    Tick service = 0;   ///< full service time of this write
    u32 subarray = 0;   ///< flat subarray the write is programming
  };
  /// A write paused mid-service awaiting resumption.
  struct PausedWrite {
    MemoryRequest req;
    Tick remaining = 0;
    u32 subarray = 0;
  };

  void dispatch();
  void schedule_dispatch();
  /// Park a completed-read result; the completion event captures the slot.
  u32 acquire_read_slot(MemoryRequest&& req);
  MemoryRequest take_read_slot(u32 slot);
  void issue_read(MemoryRequest req);
  void issue_write(MemoryRequest req, Tick service_override = 0);
  void issue_write_batch(std::vector<MemoryRequest> reqs);
  void complete_write(u32 bank, u64 epoch);
  bool try_pause(u32 bank, u32 wanted_subarray);
  void resume_paused(u32 bank);
  bool read_waiting_for_subarray(u32 subarray);
  void notify_space();
  StartGapLeveler& leveler_for(u64 region);
  void apply_gap_move(u64 region, const GapMove& move);

  sim::Simulator& sim_;
  pcm::PcmConfig pcm_;
  ControllerConfig cfg_;
  schemes::WriteScheme& scheme_;
  stats::Registry& reg_;

  AddressMap map_;
  DataStore store_;
  std::vector<pcm::PcmBank> banks_;      ///< write serialization (charge pump)
  std::vector<pcm::PcmBank> subarrays_;  ///< array occupancy (reads + writes)
  pcm::EnergyModel energy_;
  pcm::WearTracker wear_;

  std::deque<MemoryRequest> read_q_;
  std::deque<MemoryRequest> write_q_;
  bool draining_ = false;
  bool dispatch_scheduled_ = false;
  bool space_scheduled_ = false;
  u64 next_id_ = 1;
  u64 inflight_ = 0;  ///< issued commands not yet complete

  // Write pausing state, indexed by flat bank id.
  std::vector<std::optional<ActiveWrite>> active_write_;
  std::vector<std::optional<PausedWrite>> paused_write_;
  std::vector<u64> bank_epoch_;

  // Wear leveling state, keyed by region id.
  std::unordered_map<u64, StartGapLeveler> levelers_;

  // In-flight read results staged by slot: completion callbacks capture
  // one u32 instead of a full MemoryRequest, keeping them inside the
  // simulator's 48 B inline-callback budget (and allocation-free).
  std::vector<MemoryRequest> read_pool_;
  std::vector<u32> free_read_slots_;

  ReadCallback on_read_;
  WriteCallback on_write_;
  SpaceCallback on_space_;

  // Stats (owned by the registry).
  stats::Counter& c_reads_;
  stats::Counter& c_writes_;
  stats::Counter& c_forwarded_;
  stats::Counter& c_coalesced_;
  stats::Counter& c_silent_;
  stats::Counter& c_flipped_units_;
  stats::Counter& c_pauses_;
  stats::Counter& c_gap_moves_;
  stats::Counter& c_batched_;
  stats::Accumulator& a_read_latency_;
  stats::Accumulator& a_write_latency_;
  stats::Accumulator& a_write_units_;
  stats::Accumulator& a_write_service_;
  stats::Log2Histogram& h_read_latency_;
  stats::Log2Histogram& h_write_latency_;
};

}  // namespace tw::mem
