#pragma once
// Start-Gap wear leveling (Qureshi et al., MICRO'09 — the paper's
// reference [5]). PCM cells endure ~10^8 writes; without leveling a hot
// line kills its cells orders of magnitude before the rest of the device.
//
// Start-Gap keeps one spare line per region and two registers:
//   GAP   — the physical slot currently left empty,
//   START — the rotation offset accumulated over whole gap cycles.
// Every `gap_write_interval` writes the gap moves down by one slot (the
// neighbouring line is copied into the empty slot), so over time every
// logical line visits every physical slot. A Feistel-network address
// randomizer (static key) decorrelates spatially-local hot lines first,
// as the paper's region-based variants do.

#include <optional>

#include "tw/common/assert.hpp"
#include "tw/common/types.hpp"

namespace tw::mem {

/// Configuration of one Start-Gap region.
struct StartGapConfig {
  u64 region_lines = 1 << 16;   ///< logical lines per region
  u32 gap_write_interval = 100; ///< writes between gap movements (psi)
  bool randomize = true;        ///< Feistel address randomization
  u64 key = 0x5DEECE66D;        ///< randomizer key

  bool valid() const {
    return region_lines >= 2 && gap_write_interval >= 1 &&
           (region_lines & 1) == 0;  // Feistel wants an even split
  }
};

/// A gap movement the caller must perform: copy the content of
/// `from_physical` into `to_physical` (the previously empty slot).
struct GapMove {
  u64 from_physical = 0;
  u64 to_physical = 0;
};

/// Start-Gap mapping for one region of lines. Thread-compatible.
class StartGapLeveler {
 public:
  explicit StartGapLeveler(StartGapConfig cfg);

  /// Map a logical line index (0..region_lines-1) to its physical slot
  /// (0..region_lines; one extra slot holds the gap).
  u64 map(u64 logical_line) const;

  /// Record one demand write. Returns a GapMove when the write triggers
  /// gap movement; the caller copies that line, then mapping reflects the
  /// new gap position (this call already updated it).
  std::optional<GapMove> on_write();

  u64 gap() const { return gap_; }
  u64 start() const { return start_; }
  u64 gap_moves() const { return moves_; }
  const StartGapConfig& config() const { return cfg_; }

 private:
  u64 randomize(u64 line) const;

  StartGapConfig cfg_;
  u64 gap_;        ///< physical slot currently empty (0..region_lines)
  u64 start_ = 0;  ///< rotation offset (whole cycles)
  u64 writes_ = 0;
  u64 moves_ = 0;
};

}  // namespace tw::mem
