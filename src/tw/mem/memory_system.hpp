#pragma once
// Multi-channel memory system: an XBar front-end routing requests across
// per-channel Controller instances (the PCMSimMemorySystem shape).
//
// channels == 1 is a pure passthrough: one Controller lives on the
// front simulator, the main registry collects its stats, callbacks are
// forwarded unmodified — bit-identical to wiring the Controller up
// directly (locked by golden_fig_test).
//
// channels > 1 shards the simulation: every channel gets its own
// Simulator, Controller, WriteScheme, Registry and (optional)
// FaultModel, all advanced in lockstep quanta by a ShardedEngine whose
// quantum equals the XBar latency. Request/completion traffic crosses
// domains as latency-Q messages; flow control is credit-based on the
// front side (credits sized to the channel queues) so the front never
// needs to peek at a channel's queue state mid-window:
//
//   * a request consumes a read/write credit for its channel; zero
//     credits => enqueue() returns false and the space callback fires
//     once a credit-release message comes back;
//   * a completed read/write releases its credit (riding the completion
//     message); a write that coalesces into a queued same-line write
//     (detected at delivery: queue depth unchanged) releases its credit
//     immediately, since no completion will ever fire for it;
//   * a per-channel backlog FIFO absorbs any delivery the controller
//     refuses (robustness against credit/queue drift, e.g. transient
//     full windows); it drains on the channel's own space callback.
//
// Start-Gap wear leveling composes only approximately with channels > 1
// (a controller's remap permutes line addresses within its own address
// space, which is self-consistent but no longer round-trips through the
// global channel decode); golden and determinism configs keep it off.

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "tw/common/types.hpp"
#include "tw/fault/fault_model.hpp"
#include "tw/mem/address_map.hpp"
#include "tw/mem/controller.hpp"
#include "tw/mem/dram_tier.hpp"
#include "tw/mem/interface.hpp"
#include "tw/schemes/write_scheme.hpp"
#include "tw/sim/sharded.hpp"
#include "tw/sim/simulator.hpp"
#include "tw/stats/registry.hpp"
#include "tw/trace/tracer.hpp"

namespace tw::mem {

/// Builds one WriteScheme instance per channel (schemes carry mutable
/// planning state, so channels cannot share one). Supplied by the
/// harness so mem/ stays below core/ in the layering.
using SchemeFactory =
    std::function<std::unique_ptr<schemes::WriteScheme>(u32 channel)>;

class MemorySystem : public MemoryInterface {
 public:
  /// Per-channel trace-track namespace stride: channel c's controller
  /// emits bank/queue/FSM tracks at instance index c * kChannelTrackStride.
  static constexpr u32 kChannelTrackStride = 4096;

  /// `front_sim` hosts the CPU/XBar domain. Geometry (pcm.geometry.channels,
  /// channel_interleave) decides the topology. `registry` is the main
  /// registry: channels == 1 registers stats there directly; channels > 1
  /// uses per-channel registries folded in by merge_stats().
  /// `xbar_latency` is both the modeled XBar hop latency and the sharded
  /// quantum; `sim_threads` caps pool threads for the channel phase (0 =
  /// all).
  /// `dram` optionally fronts every channel with a DramTier absorbing
  /// hot lines before the PCM write path; the default (disabled) keeps
  /// every code path bit-identical to a system without the tier.
  MemorySystem(sim::Simulator& front_sim, const pcm::PcmConfig& pcm,
               const ControllerConfig& ccfg, const SchemeFactory& factory,
               stats::Registry& registry, const fault::FaultConfig& fault,
               u64 seed, double ones_bias, Tick xbar_latency, u32 sim_threads,
               const DramConfig& dram = {});
  ~MemorySystem() override;

  // MemoryInterface (front-side, called from the front domain).
  bool enqueue(MemoryRequest req) override;
  void set_read_callback(ReadCallback cb) override;
  void set_write_callback(WriteCallback cb) override;
  void set_space_callback(SpaceCallback cb) override;
  bool idle() const override;
  DataStore& store_for(Addr addr) override;

  /// Advance the whole system (front + channels) to `limit`.
  u64 run(Tick limit);

  /// Events executed across every simulation domain.
  u64 executed_events() const;

  u32 channels() const { return channels_; }
  Controller& channel(u32 c) { return *chans_[c].ctl; }
  const Controller& channel(u32 c) const { return *chans_[c].ctl; }
  const schemes::WriteScheme& scheme() const { return *chans_[0].scheme; }
  const AddressMap& address_map() const { return map_; }

  /// Channel c's private registry (nullptr for channels == 1, where the
  /// controller registers in the main registry directly).
  stats::Registry* channel_registry(u32 c) { return chans_[c].reg.get(); }

  /// True when the DRAM front tier is active.
  bool dram_active() const { return dram_on_; }
  /// Channel c's DRAM tier (nullptr when the tier is disabled).
  DramTier* dram_tier(u32 c) {
    return dram_on_ ? tiers_[c].get() : nullptr;
  }

  /// Fold per-channel registries into the main registry in channel order.
  /// No-op for channels == 1 (stats already live there). Call once after
  /// run().
  void merge_stats();

  /// Pre-create one ring per domain (front first, then channels in
  /// order) and bind them to the engine, so trace bytes are identical at
  /// every thread count. No-op for channels == 1 (the plain Attach path
  /// applies). Call before run().
  void bind_trace(trace::Tracer& tracer);

  /// Ring bound to the front domain (nullptr unless bind_trace ran).
  trace::TraceRing* front_ring() { return front_ring_; }

 private:
  struct Credits {
    u32 read = 0;
    u32 write = 0;
  };
  struct Channel {
    std::unique_ptr<sim::Simulator> sim;   ///< null for channels == 1
    std::unique_ptr<stats::Registry> reg;  ///< null for channels == 1
    std::unique_ptr<schemes::WriteScheme> scheme;
    std::unique_ptr<fault::FaultModel> fmodel;
    std::unique_ptr<Controller> ctl;
    std::deque<MemoryRequest> backlog;
    Credits credits;
  };

  void deliver(u32 c, MemoryRequest req);
  void try_deliver(u32 c, MemoryRequest req);
  void drain_backlog(u32 c);
  void post_credit(u32 c, bool is_write);
  void release_credit(u32 c, bool is_write);
  /// Completion dispatch on the front domain: routes through the DRAM
  /// tier when it is active (swallowing tier writebacks), else straight
  /// to the user callbacks.
  void front_read_complete(u32 c, const MemoryRequest& req);
  void front_write_complete(u32 c, const MemoryRequest& req);
  /// Build and install channel c's DRAM tier (forward fn + callbacks).
  void wire_dram(u32 c, const DramConfig& dram);

  sim::Simulator& front_;
  stats::Registry& main_reg_;
  AddressMap map_;
  u32 channels_;
  u32 rq_entries_;
  u32 wq_entries_;
  std::vector<Channel> chans_;
  std::unique_ptr<sim::ShardedEngine> engine_;  ///< null for channels == 1
  /// DRAM front tiers, one per channel (empty when dram.enabled=false so
  /// the disabled configuration is a pure passthrough).
  std::vector<std::unique_ptr<DramTier>> tiers_;
  bool dram_on_ = false;
  bool starved_ = false;  ///< an enqueue failed since the last release
  trace::TraceRing* front_ring_ = nullptr;

  ReadCallback on_read_;
  WriteCallback on_write_;
  SpaceCallback on_space_;
};

}  // namespace tw::mem
