#pragma once
// Physical address decomposition: line-interleaved bank mapping
// (consecutive cache lines hit consecutive banks, maximizing bank-level
// parallelism for streaming writes — the standard NVMain default).

#include "tw/common/assert.hpp"
#include "tw/common/types.hpp"
#include "tw/pcm/params.hpp"

namespace tw::mem {

/// Decoded location of a cache line.
struct Location {
  u32 rank = 0;
  u32 bank = 0;
  u32 subarray = 0;
  u64 row = 0;
};

/// Line-interleaved address map over the configured geometry.
class AddressMap {
 public:
  explicit AddressMap(const pcm::GeometryParams& g)
      : line_bytes_(g.cache_line_bytes),
        banks_(g.banks),
        ranks_(g.ranks),
        subarrays_(g.subarrays_per_bank),
        line_shift_(log2_pow2(g.cache_line_bytes)) {
    TW_EXPECTS(is_pow2(g.cache_line_bytes));
    TW_EXPECTS(is_pow2(g.banks));
    TW_EXPECTS(is_pow2(g.subarrays_per_bank));
  }

  /// Align an address down to its cache line.
  Addr line_of(Addr a) const { return a & ~static_cast<Addr>(line_bytes_ - 1); }

  /// Sequential line index of an address.
  u64 line_index(Addr a) const { return a >> line_shift_; }

  Location decode(Addr a) const {
    const u64 li = line_index(a);
    Location loc;
    loc.bank = static_cast<u32>(li & (banks_ - 1));
    const u64 above = li >> log2_pow2(banks_);
    loc.rank = static_cast<u32>(above % ranks_);
    loc.row = above / ranks_;
    loc.subarray = static_cast<u32>(loc.row & (subarrays_ - 1));
    return loc;
  }

  /// Total banks across all ranks (flat bank id = rank*banks + bank).
  u32 total_banks() const { return banks_ * ranks_; }

  /// Total subarrays across all banks and ranks.
  u32 total_subarrays() const { return total_banks() * subarrays_; }

  u32 flat_bank(Addr a) const {
    const Location loc = decode(a);
    return loc.rank * banks_ + loc.bank;
  }

  /// Flat subarray id: flat_bank * subarrays + subarray.
  u32 flat_subarray(Addr a) const {
    const Location loc = decode(a);
    return (loc.rank * banks_ + loc.bank) * subarrays_ + loc.subarray;
  }

  u32 subarrays_per_bank() const { return subarrays_; }
  u32 line_bytes() const { return line_bytes_; }

 private:
  u32 line_bytes_;
  u32 banks_;
  u32 ranks_;
  u32 subarrays_;
  u32 line_shift_;
};

}  // namespace tw::mem
