#pragma once
// Physical address decomposition: line-interleaved bank mapping
// (consecutive cache lines hit consecutive banks, maximizing bank-level
// parallelism for streaming writes — the standard NVMain default), plus
// channel routing for the multi-channel topology. The channel bits are
// stripped before bank/row decoding so that every controller sees a
// dense channel-local geometry while still operating on global
// addresses (the sparse DataStore keys by global line address).

#include <stdexcept>

#include "tw/common/assert.hpp"
#include "tw/common/types.hpp"
#include "tw/pcm/params.hpp"

namespace tw::mem {

/// Decoded location of a cache line.
struct Location {
  u32 channel = 0;
  u32 rank = 0;
  u32 bank = 0;
  u32 subarray = 0;
  u64 row = 0;
};

/// Line-interleaved address map over the configured geometry.
class AddressMap {
 public:
  explicit AddressMap(const pcm::GeometryParams& g)
      : line_bytes_(g.cache_line_bytes),
        banks_(g.banks),
        ranks_(g.ranks),
        subarrays_(g.subarrays_per_bank),
        channels_(g.channels == 0 ? 1 : g.channels),
        interleave_(g.channel_interleave),
        line_shift_(is_pow2(g.cache_line_bytes) ? log2_pow2(g.cache_line_bytes)
                                                : 0),
        lines_per_channel_(g.cache_line_bytes == 0
                               ? 0
                               : g.capacity_bytes / channels_ /
                                     g.cache_line_bytes) {
    const std::string err = g.error();
    if (!err.empty()) throw std::invalid_argument("AddressMap: " + err);
  }

  /// Align an address down to its cache line.
  Addr line_of(Addr a) const { return a & ~static_cast<Addr>(line_bytes_ - 1); }

  /// Sequential line index of an address.
  u64 line_index(Addr a) const { return a >> line_shift_; }

  /// Which channel owns the line (routing decision of the XBar).
  u32 channel_of(Addr a) const {
    if (channels_ == 1) return 0;
    const u64 li = line_index(a);
    switch (interleave_) {
      case pcm::ChannelInterleave::kLine:
        return static_cast<u32>(li & (channels_ - 1));
      case pcm::ChannelInterleave::kBank:
        return static_cast<u32>((li >> log2_pow2(banks_)) & (channels_ - 1));
      case pcm::ChannelInterleave::kRow:
        return static_cast<u32>((li / lines_per_channel_) & (channels_ - 1));
    }
    return 0;
  }

  /// Channel-stripped dense line index: what the owning channel's
  /// controller (and the DRAM front tier's set/row decoders) see. Equal
  /// to line_index() for channels == 1.
  u64 local_line_index(Addr a) const {
    u64 li = line_index(a);
    if (channels_ > 1) {
      // Strip the channel bits so each controller decodes a dense
      // channel-local line index (all banks/rows reachable per channel).
      switch (interleave_) {
        case pcm::ChannelInterleave::kLine:
          li >>= log2_pow2(channels_);
          break;
        case pcm::ChannelInterleave::kBank: {
          const u32 bank_bits = log2_pow2(banks_);
          const u64 bank_part = li & (banks_ - 1);
          li = ((li >> bank_bits >> log2_pow2(channels_)) << bank_bits) |
               bank_part;
          break;
        }
        case pcm::ChannelInterleave::kRow:
          li %= lines_per_channel_;
          break;
      }
    }
    return li;
  }

  Location decode(Addr a) const {
    Location loc;
    loc.channel = channel_of(a);
    const u64 li = local_line_index(a);
    loc.bank = static_cast<u32>(li & (banks_ - 1));
    const u64 above = li >> log2_pow2(banks_);
    loc.rank = static_cast<u32>(above % ranks_);
    loc.row = above / ranks_;
    loc.subarray = static_cast<u32>(loc.row & (subarrays_ - 1));
    return loc;
  }

  /// Total banks across all ranks (flat bank id = rank*banks + bank).
  u32 total_banks() const { return banks_ * ranks_; }

  /// Total subarrays across all banks and ranks.
  u32 total_subarrays() const { return total_banks() * subarrays_; }

  u32 flat_bank(Addr a) const {
    const Location loc = decode(a);
    return loc.rank * banks_ + loc.bank;
  }

  /// Flat subarray id: flat_bank * subarrays + subarray.
  u32 flat_subarray(Addr a) const {
    const Location loc = decode(a);
    return (loc.rank * banks_ + loc.bank) * subarrays_ + loc.subarray;
  }

  u32 subarrays_per_bank() const { return subarrays_; }
  u32 line_bytes() const { return line_bytes_; }
  u32 channels() const { return channels_; }

 private:
  u32 line_bytes_;
  u32 banks_;
  u32 ranks_;
  u32 subarrays_;
  u32 channels_;
  pcm::ChannelInterleave interleave_;
  u32 line_shift_;
  u64 lines_per_channel_;
};

}  // namespace tw::mem
