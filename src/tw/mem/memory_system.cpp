#include "tw/mem/memory_system.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "tw/common/assert.hpp"

namespace tw::mem {

MemorySystem::MemorySystem(sim::Simulator& front_sim,
                           const pcm::PcmConfig& pcm,
                           const ControllerConfig& ccfg,
                           const SchemeFactory& factory,
                           stats::Registry& registry,
                           const fault::FaultConfig& fault, u64 seed,
                           double ones_bias, Tick xbar_latency,
                           u32 sim_threads, const DramConfig& dram)
    : front_(front_sim),
      main_reg_(registry),
      map_(pcm.geometry),
      channels_(map_.channels()),
      rq_entries_(ccfg.read_queue_entries),
      wq_entries_(ccfg.write_queue_entries) {
  const std::string derr = dram.error(pcm.geometry);
  if (!derr.empty()) throw std::invalid_argument("MemorySystem: " + derr);
  const u32 total_banks = pcm.geometry.banks * pcm.geometry.ranks;
  chans_.resize(channels_);

  if (channels_ == 1) {
    // Passthrough: the controller lives on the front simulator and
    // registers its stats in the main registry — bit-identical to the
    // pre-multi-channel wiring.
    Channel& ch = chans_[0];
    ch.scheme = factory(0);
    if (fault.enabled()) {
      ch.fmodel =
          std::make_unique<fault::FaultModel>(fault, total_banks, seed);
    }
    ch.ctl = std::make_unique<Controller>(front_sim, pcm, ccfg, *ch.scheme,
                                          registry, seed, ones_bias,
                                          ch.fmodel.get());
  } else {
    engine_ = std::make_unique<sim::ShardedEngine>(xbar_latency, sim_threads);
    const u32 front_domain = engine_->add_domain(front_sim);
    TW_ASSERT(front_domain == 0);

    for (u32 c = 0; c < channels_; ++c) {
      Channel& ch = chans_[c];
      ch.sim = std::make_unique<sim::Simulator>();
      ch.reg = std::make_unique<stats::Registry>();
      ch.scheme = factory(c);
      if (fault.enabled()) {
        // Per-channel fault streams: same profile, decorrelated sites.
        ch.fmodel = std::make_unique<fault::FaultModel>(
            fault, total_banks, seed + c * 0x9E3779B97F4A7C15ull);
      }
      ControllerConfig chan_cfg = ccfg;
      chan_cfg.track_base = c * kChannelTrackStride;
      ch.ctl = std::make_unique<Controller>(*ch.sim, pcm, chan_cfg,
                                            *ch.scheme, *ch.reg, seed,
                                            ones_bias, ch.fmodel.get());
      ch.credits.read = rq_entries_;
      ch.credits.write = wq_entries_;
      const u32 domain = engine_->add_domain(*ch.sim);
      TW_ASSERT(domain == c + 1);

      // Channel-side wiring (runs in the channel's domain): completions
      // ride latency-Q messages back to the front, releasing their credit
      // there; queue space drains the delivery backlog locally.
      ch.ctl->set_read_callback([this, c](const MemoryRequest& req) {
        engine_->post(c + 1, 0, sim::Priority::kDeviceComplete,
                      sim::ShardedEngine::Message([this, c, r = req] {
                        release_credit(c, false);
                        front_read_complete(c, r);
                      }));
      });
      ch.ctl->set_write_callback([this, c](const MemoryRequest& req) {
        engine_->post(c + 1, 0, sim::Priority::kDeviceComplete,
                      sim::ShardedEngine::Message([this, c, r = req] {
                        release_credit(c, true);
                        front_write_complete(c, r);
                      }));
      });
      ch.ctl->set_space_callback([this, c] { drain_backlog(c); });
    }
  }

  if (dram.enabled) {
    dram_on_ = true;
    tiers_.resize(channels_);
    for (u32 c = 0; c < channels_; ++c) wire_dram(c, dram);
  }
}

void MemorySystem::wire_dram(u32 c, const DramConfig& dram) {
  tiers_[c] = std::make_unique<DramTier>(front_, dram, map_, c, main_reg_);
  DramTier* tier = tiers_[c].get();
  // Tier-side completions (DRAM hits and demand-read returns) feed the
  // user callbacks stored on the MemorySystem; reading them at call time
  // lets set_read_callback() run after construction.
  tier->set_read_callback([this](const MemoryRequest& r) {
    if (on_read_) on_read_(r);
  });
  tier->set_write_callback([this](const MemoryRequest& r) {
    if (on_write_) on_write_(r);
  });
  if (channels_ == 1) {
    // Miss path straight into the controller; passing the lvalue copies,
    // so a refusal leaves the tier's pending entry intact.
    tier->set_forward(
        [this](MemoryRequest& r) { return chans_[0].ctl->enqueue(r); });
    chans_[0].ctl->set_read_callback(
        [this](const MemoryRequest& r) { front_read_complete(0, r); });
    chans_[0].ctl->set_write_callback(
        [this](const MemoryRequest& r) { front_write_complete(0, r); });
    chans_[0].ctl->set_space_callback([this] {
      tiers_[0]->on_pcm_space();
      if (starved_ && tiers_[0]->has_room()) {
        starved_ = false;
        if (on_space_) on_space_();
      }
    });
  } else {
    // Miss path consumes a channel credit exactly like a front enqueue
    // did without the tier; DRAM hits never reach this function, which
    // is what keeps them credit-free.
    tier->set_forward([this, c](MemoryRequest& r) {
      Credits& cr = chans_[c].credits;
      u32& avail = r.is_write() ? cr.write : cr.read;
      if (avail == 0) return false;
      --avail;
      engine_->post(0, c + 1, sim::Priority::kController,
                    sim::ShardedEngine::Message(
                        [this, c, req = std::move(r)]() mutable {
                          deliver(c, std::move(req));
                        }));
      return true;
    });
  }
}

void MemorySystem::front_read_complete(u32 c, const MemoryRequest& req) {
  if (dram_on_) {
    tiers_[c]->on_pcm_read_complete(req);
    return;
  }
  if (on_read_) on_read_(req);
}

void MemorySystem::front_write_complete(u32 c, const MemoryRequest& req) {
  if (dram_on_ && tiers_[c]->absorbs_write_complete(req)) return;
  if (on_write_) on_write_(req);
}

MemorySystem::~MemorySystem() = default;

bool MemorySystem::enqueue(MemoryRequest req) {
  if (dram_on_) {
    const u32 c = channels_ == 1 ? 0 : map_.channel_of(req.addr);
    const bool ok = tiers_[c]->enqueue(std::move(req));
    if (!ok) starved_ = true;
    return ok;
  }
  if (channels_ == 1) return chans_[0].ctl->enqueue(std::move(req));
  const u32 c = map_.channel_of(req.addr);
  Credits& cr = chans_[c].credits;
  u32& avail = req.is_write() ? cr.write : cr.read;
  if (avail == 0) {
    starved_ = true;
    return false;
  }
  --avail;
  engine_->post(0, c + 1, sim::Priority::kController,
                sim::ShardedEngine::Message(
                    [this, c, r = std::move(req)]() mutable {
                      deliver(c, std::move(r));
                    }));
  return true;
}

void MemorySystem::set_read_callback(ReadCallback cb) {
  if (channels_ == 1 && !dram_on_) {
    chans_[0].ctl->set_read_callback(std::move(cb));
  } else {
    on_read_ = std::move(cb);
  }
}

void MemorySystem::set_write_callback(WriteCallback cb) {
  if (channels_ == 1 && !dram_on_) {
    chans_[0].ctl->set_write_callback(std::move(cb));
  } else {
    on_write_ = std::move(cb);
  }
}

void MemorySystem::set_space_callback(SpaceCallback cb) {
  if (channels_ == 1 && !dram_on_) {
    chans_[0].ctl->set_space_callback(std::move(cb));
  } else {
    on_space_ = std::move(cb);
  }
}

bool MemorySystem::idle() const {
  for (const Channel& ch : chans_) {
    if (!ch.ctl->idle() || !ch.backlog.empty()) return false;
    if (channels_ > 1 && (ch.credits.read != rq_entries_ ||
                          ch.credits.write != wq_entries_)) {
      return false;  // requests or completions still in flight
    }
  }
  if (dram_on_) {
    for (const auto& tier : tiers_) {
      if (!tier->idle()) return false;
    }
  }
  return true;
}

DataStore& MemorySystem::store_for(Addr addr) {
  return chans_[channels_ == 1 ? 0 : map_.channel_of(addr)].ctl->store();
}

u64 MemorySystem::run(Tick limit) {
  return channels_ == 1 ? front_.run(limit) : engine_->run(limit);
}

u64 MemorySystem::executed_events() const {
  return channels_ == 1 ? front_.executed() : engine_->executed_total();
}

void MemorySystem::merge_stats() {
  if (channels_ == 1) return;
  // Fixed channel order keeps merged accumulator arithmetic (and thus
  // reported doubles) identical at every thread count.
  for (const Channel& ch : chans_) main_reg_.merge_from(*ch.reg);
}

void MemorySystem::bind_trace(trace::Tracer& tracer) {
  if (channels_ == 1) return;
  front_ring_ = &tracer.make_ring();
  engine_->bind_trace(0, front_ring_, tracer.mask());
  for (u32 c = 0; c < channels_; ++c) {
    engine_->bind_trace(c + 1, &tracer.make_ring(), tracer.mask());
  }
}

void MemorySystem::deliver(u32 c, MemoryRequest req) {
  Channel& ch = chans_[c];
  if (!ch.backlog.empty()) {
    // Preserve arrival order behind requests already waiting.
    ch.backlog.push_back(std::move(req));
    return;
  }
  try_deliver(c, std::move(req));
}

void MemorySystem::try_deliver(u32 c, MemoryRequest req) {
  Channel& ch = chans_[c];
  const bool is_write = req.is_write();
  const u32 depth_before = ch.ctl->write_queue_depth();
  // enqueue takes its argument by value; passing the lvalue copies, so a
  // refusal leaves `req` intact for the backlog.
  if (!ch.ctl->enqueue(req)) {
    ch.backlog.push_back(std::move(req));
    return;
  }
  if (is_write && ch.ctl->write_queue_depth() == depth_before) {
    // Coalesced into a queued same-line write: no completion will ever
    // fire for this request, so hand its credit back now.
    post_credit(c, true);
  }
}

void MemorySystem::drain_backlog(u32 c) {
  Channel& ch = chans_[c];
  while (!ch.backlog.empty()) {
    MemoryRequest& req = ch.backlog.front();
    const bool is_write = req.is_write();
    const u32 depth_before = ch.ctl->write_queue_depth();
    if (!ch.ctl->enqueue(req)) return;  // still full; keep order, wait
    ch.backlog.pop_front();
    if (is_write && ch.ctl->write_queue_depth() == depth_before) {
      post_credit(c, true);
    }
  }
}

void MemorySystem::post_credit(u32 c, bool is_write) {
  engine_->post(c + 1, 0, sim::Priority::kDeviceComplete,
                sim::ShardedEngine::Message([this, c, is_write] {
                  release_credit(c, is_write);
                }));
}

void MemorySystem::release_credit(u32 c, bool is_write) {
  Credits& cr = chans_[c].credits;
  u32& avail = is_write ? cr.write : cr.read;
  const u32 cap = is_write ? wq_entries_ : rq_entries_;
  if (avail < cap) ++avail;
  if (dram_on_) {
    // The freed credit may let the tier forward a pending writeback or
    // demand miss; the front unstarves only once its pending queue has
    // room again (tier starvation is about that queue, not credits).
    tiers_[c]->on_pcm_space();
    if (starved_ && tiers_[c]->has_room()) {
      starved_ = false;
      if (on_space_) on_space_();
    }
    return;
  }
  if (starved_) {
    starved_ = false;
    if (on_space_) on_space_();
  }
}

}  // namespace tw::mem
