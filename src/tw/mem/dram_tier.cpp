#include "tw/mem/dram_tier.hpp"

#include <utility>

#include "tw/common/assert.hpp"
#include "tw/trace/emit.hpp"

namespace tw::mem {

const char* dram_policy_name(DramPolicy p) {
  switch (p) {
    case DramPolicy::kLru: return "lru";
    case DramPolicy::kMac: return "mac";
  }
  return "unknown";
}

std::string DramConfig::error(const pcm::GeometryParams& g) const {
  if (!enabled) return "";
  if (ways == 0) return "dram.ways must be >= 1";
  if (!is_pow2(row_lines)) return "dram.row_lines must be a power of two";
  if (!is_pow2(banks)) return "dram.banks must be a power of two";
  if (t_row_hit == 0 || t_row_miss == 0) {
    return "dram.t_row_hit/t_row_miss must be >= 1 tick";
  }
  if (pending_limit == 0) return "dram.pending_limit must be >= 1";
  if (mac_group == 0) return "dram.mac_group must be >= 1";
  const u32 channels = g.channels == 0 ? 1 : g.channels;
  const u64 line_bytes = g.cache_line_bytes;
  const u64 per_channel = capacity_bytes / channels;
  const u64 sets = per_channel / (u64{ways} * line_bytes);
  if (sets == 0) {
    return "dram.capacity_bytes too small: " + std::to_string(capacity_bytes) +
           " bytes across " + std::to_string(channels) + " channel(s) at " +
           std::to_string(ways) + " ways of " + std::to_string(line_bytes) +
           "-byte lines leaves zero sets per channel";
  }
  if (!is_pow2(sets)) {
    return "dram geometry must give a power-of-two set count per channel "
           "(capacity/channels/(ways*line_bytes) = " +
           std::to_string(sets) + "); adjust dram.capacity_bytes or dram.ways";
  }
  return "";
}

DramTier::DramTier(sim::Simulator& sim, const DramConfig& cfg,
                   const AddressMap& map, u32 channel, stats::Registry& reg)
    : sim_(sim),
      cfg_(cfg),
      map_(map),
      channel_(channel),
      c_hits_(reg.counter("mem.dram_hits")),
      c_misses_(reg.counter("mem.dram_misses")),
      c_writebacks_(reg.counter("mem.dram_writebacks")),
      c_clean_evicts_(reg.counter("mem.dram_clean_evicts")),
      c_group_cleans_(reg.counter("mem.dram_group_cleans")) {
  const u64 per_channel = cfg.capacity_bytes / map.channels();
  const u64 sets = per_channel / (u64{cfg.ways} * map.line_bytes());
  TW_ASSERT(sets > 0 && is_pow2(sets));  // validated by DramConfig::error
  sets_ = static_cast<u32>(sets);
  ways_.resize(u64{sets_} * cfg_.ways);
  open_row_.resize(cfg_.banks);
}

u32 DramTier::set_of(Addr line) const {
  // Index on the channel-stripped line index so every channel's tier sees
  // a dense set space regardless of the interleave.
  return static_cast<u32>(map_.local_line_index(line) & (sets_ - 1));
}

Tick DramTier::access_latency(Addr line) {
  const u64 row = map_.local_line_index(line) / cfg_.row_lines;
  const u32 bank = static_cast<u32>(row & (cfg_.banks - 1));
  OpenRow& open = open_row_[bank];
  const bool hit = open.valid && open.row == row;
  open.valid = true;
  open.row = row;
  return hit ? cfg_.t_row_hit : cfg_.t_row_miss;
}

void DramTier::complete_hit(MemoryRequest req, Tick latency) {
  req.enqueue_tick = sim_.now();
  req.start_tick = sim_.now();
  req.complete_tick = sim_.now() + latency;
  u32 slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slot_pool_[slot] = std::move(req);
  } else {
    slot = static_cast<u32>(slot_pool_.size());
    slot_pool_.push_back(std::move(req));
  }
  ++outstanding_;
  sim_.schedule_in(
      latency,
      [this, slot] {
        MemoryRequest done = std::move(slot_pool_[slot]);
        free_slots_.push_back(slot);
        --outstanding_;
        if (done.is_write()) {
          if (on_write_) on_write_(done);
        } else {
          if (on_read_) on_read_(done);
        }
      },
      sim::Priority::kDeviceComplete);
}

void DramTier::write_back(Way& w) {
  TW_ASSERT(w.valid && w.dirty && w.payload != kNoPayload);
  MemoryRequest wb;
  wb.addr = w.tag;
  wb.type = ReqType::kWrite;
  wb.core = kWritebackCore;
  wb.data = std::move(payloads_[w.payload]);
  free_payloads_.push_back(w.payload);
  w.payload = kNoPayload;
  w.dirty = false;
  c_writebacks_.inc();
  if (trace::on<trace::Category::kDram>()) {
    trace::emit_instant(trace::Category::kDram, trace::Op::kDramWriteback,
                        trace::track_id(trace::Track::kDram, channel_),
                        sim_.now(), wb.addr);
  }
  pending_.push_back(std::move(wb));
}

u32 DramTier::pick_victim(u32 set_base) {
  constexpr u32 kNone = 0xFFFFFFFFu;
  const u32 ways = cfg_.ways;
  // Invalid way first (both policies).
  for (u32 i = 0; i < ways; ++i) {
    if (!ways_[set_base + i].valid) return set_base + i;
  }
  auto lru_among = [&](bool dirty_only, bool clean_only) -> u32 {
    u32 best = kNone;
    for (u32 i = 0; i < ways; ++i) {
      const Way& w = ways_[set_base + i];
      if (dirty_only && !w.dirty) continue;
      if (clean_only && w.dirty) continue;
      if (best == kNone || w.lru < ways_[best].lru) best = set_base + i;
    }
    return best;
  };
  if (cfg_.policy == DramPolicy::kLru) return lru_among(false, false);
  // kMac: a clean victim costs PCM nothing — prefer the LRU clean way.
  const u32 clean = lru_among(false, true);
  if (clean != kNone) return clean;
  // All dirty: evict the LRU way, and clean (write back, keep resident)
  // up to mac_group - 1 further ways sharing its PCM bank so the
  // writebacks arrive as a same-bank group the BatchPacker can pack
  // jointly.
  const u32 victim = lru_among(true, false);
  const u32 bank = map_.flat_bank(ways_[victim].tag);
  u32 grouped = 1;
  for (u32 i = 0; i < ways && grouped < cfg_.mac_group; ++i) {
    Way& w = ways_[set_base + i];
    if (set_base + i == victim || !w.dirty) continue;
    if (map_.flat_bank(w.tag) != bank) continue;
    write_back(w);  // stays resident, now clean
    ++grouped;
    c_group_cleans_.inc();
  }
  if (grouped > 1 && trace::on<trace::Category::kDram>()) {
    trace::emit_instant(trace::Category::kDram, trace::Op::kDramGroupEvict,
                        trace::track_id(trace::Track::kDram, channel_),
                        sim_.now(), grouped, bank);
  }
  return victim;
}

bool DramTier::enqueue(MemoryRequest req) {
  const Addr line = map_.line_of(req.addr);
  req.addr = line;
  const u32 set_base = set_of(line) * cfg_.ways;
  const u32 ways = cfg_.ways;
  for (u32 i = 0; i < ways; ++i) {
    Way& w = ways_[set_base + i];
    if (!w.valid || w.tag != line) continue;
    // Hit: completes inside the tier, no PCM credit consumed.
    w.lru = ++clock_;
    if (req.is_write()) {
      if (w.payload == kNoPayload) {
        if (!free_payloads_.empty()) {
          w.payload = free_payloads_.back();
          free_payloads_.pop_back();
          payloads_[w.payload] = req.data;
        } else {
          w.payload = static_cast<u32>(payloads_.size());
          payloads_.push_back(req.data);
        }
      } else {
        payloads_[w.payload] = req.data;
      }
      w.dirty = true;
    }
    c_hits_.inc();
    if (trace::on<trace::Category::kDram>()) {
      trace::emit_instant(trace::Category::kDram, trace::Op::kDramHit,
                          trace::track_id(trace::Track::kDram, channel_),
                          sim_.now(), line, req.is_write() ? 1 : 0);
    }
    complete_hit(std::move(req), access_latency(line));
    return true;
  }

  // Miss. Refuse (backpressure) before touching any state so a refused
  // request leaves the tier exactly as it was.
  if (!has_room()) return false;
  c_misses_.inc();
  if (trace::on<trace::Category::kDram>()) {
    trace::emit_instant(trace::Category::kDram, trace::Op::kDramMiss,
                        trace::track_id(trace::Track::kDram, channel_),
                        sim_.now(), line, req.is_write() ? 1 : 0);
  }
  const u32 victim = pick_victim(set_base);
  Way& w = ways_[victim];
  if (w.valid) {
    if (w.dirty) {
      write_back(w);
    } else {
      c_clean_evicts_.inc();
      if (trace::on<trace::Category::kDram>()) {
        trace::emit_instant(trace::Category::kDram,
                            trace::Op::kDramCleanEvict,
                            trace::track_id(trace::Track::kDram, channel_),
                            sim_.now(), w.tag);
      }
    }
  }
  w.valid = true;
  w.tag = line;
  w.lru = ++clock_;
  w.dirty = false;
  const Tick latency = access_latency(line);  // fill activates the row
  if (req.is_write()) {
    // Write-allocate without fetch: a full-line write needs no PCM read.
    if (!free_payloads_.empty()) {
      w.payload = free_payloads_.back();
      free_payloads_.pop_back();
      payloads_[w.payload] = req.data;
    } else {
      w.payload = static_cast<u32>(payloads_.size());
      payloads_.push_back(req.data);
    }
    w.dirty = true;
    complete_hit(std::move(req), latency);
  } else {
    // Demand read: forwarded to PCM behind any writebacks just queued.
    // The line fills at miss time (hit-under-miss idealization); the
    // read's latency is the PCM round trip.
    pending_.push_back(std::move(req));
  }
  drain_forwards();
  return true;
}

void DramTier::on_pcm_read_complete(const MemoryRequest& req) {
  if (on_read_) on_read_(req);
}

void DramTier::on_pcm_space() { drain_forwards(); }

void DramTier::drain_forwards() {
  if (!forward_) return;
  while (!pending_.empty()) {
    if (!forward_(pending_.front())) return;  // refusal leaves it intact
    pending_.pop_front();
  }
}

}  // namespace tw::mem
