#include "tw/mem/controller.hpp"

#include <algorithm>
#include <utility>

#include "tw/common/assert.hpp"
#include "tw/common/bits.hpp"
#include "tw/common/inline_vec.hpp"
#include "tw/trace/emit.hpp"

namespace tw::mem {

namespace {
// Shorthand for the controller's emission sites; every record is gated on
// the kController category.
constexpr auto kCat = trace::Category::kController;
// Track instance indices are offset by the controller's track_base so a
// MemorySystem can namespace each channel's tracks (base 0 keeps
// single-channel traces byte-identical to before).
constexpr u32 read_queue_track(u32 base) {
  return trace::track_id(trace::Track::kQueue, base + 0);
}
constexpr u32 write_queue_track(u32 base) {
  return trace::track_id(trace::Track::kQueue, base + 1);
}
constexpr u32 bank_track(u32 base, u32 bank) {
  return trace::track_id(trace::Track::kBank, base + bank);
}
constexpr u32 sub_track(u32 base, u32 sub) {
  return trace::track_id(trace::Track::kSubarray, base + sub);
}
constexpr auto kFaultCat = trace::Category::kFault;
constexpr u32 fault_track(u32 base) {
  return trace::track_id(trace::Track::kFault, base);
}
// PALP emissions (partition occupancy spans, overlapped reads, pump
// stalls) live in their own category so partition studies can be traced
// without the full controller firehose. All emission sites are gated on
// palp_on_, keeping PALP-off trace bytes identical to before.
constexpr auto kPalpCat = trace::Category::kPalp;
constexpr u32 palp_track(u32 base, u32 bank) {
  return trace::track_id(trace::Track::kPalp, base + bank);
}
// Content-encoder pre-stage emissions. Gated on plan.enc.active, so
// encoder-off runs emit nothing and their trace bytes stay identical to
// builds without the encoder stage.
constexpr auto kEncodeCat = trace::Category::kEncode;
constexpr u32 encode_track(u32 base, u32 bank) {
  return trace::track_id(trace::Track::kEncode, base + bank);
}
}  // namespace

Controller::Controller(sim::Simulator& sim, const pcm::PcmConfig& pcm_cfg,
                       ControllerConfig cfg, schemes::WriteScheme& scheme,
                       stats::Registry& registry, u64 data_seed,
                       double ones_bias, const fault::FaultModel* fault)
    : sim_(sim),
      pcm_(pcm_cfg),
      cfg_(cfg),
      scheme_(scheme),
      reg_(registry),
      fault_(fault),
      fault_remap_(fault != nullptr && fault->any_bank_stuck()),
      map_(pcm_cfg.geometry),
      store_(pcm_cfg.geometry.units_per_line(), data_seed, ones_bias),
      banks_(map_.total_banks()),
      subarrays_(map_.total_subarrays()),
      pumps_(map_.total_banks()),
      energy_(pcm_cfg.energy),
      read_by_sub_(map_.total_subarrays()),
      write_by_bank_(map_.total_banks()),
      subs_with_reads_((map_.total_subarrays() + 63) / 64, 0),
      banks_with_writes_((map_.total_banks() + 63) / 64, 0),
      // Stuck-bank remapping moves requests' effective (bank, subarray)
      // away from the decoded location, which only the exact age-ordered
      // dispatch paths tolerate (same reason as wear leveling).
      static_mapping_(!cfg.wear_leveling && !fault_remap_),
      open_row_(map_.total_banks()),
      active_write_(map_.total_banks()),
      paused_write_(map_.total_banks()),
      bank_epoch_(map_.total_banks(), 0),
      palp_active_(map_.total_banks()),
      palp_on_(cfg.palp.enabled && pcm_cfg.geometry.subarrays_per_bank > 1),
      c_reads_(registry.counter("mem.reads")),
      c_writes_(registry.counter("mem.writes")),
      c_forwarded_(registry.counter("mem.reads_forwarded")),
      c_coalesced_(registry.counter("mem.writes_coalesced")),
      c_silent_(registry.counter("mem.writes_silent")),
      c_flipped_units_(registry.counter("mem.units_flipped")),
      c_pauses_(registry.counter("mem.write_pauses")),
      c_gap_moves_(registry.counter("mem.gap_moves")),
      c_batched_(registry.counter("mem.writes_batched")),
      c_row_hits_(registry.counter("mem.row_hits")),
      c_row_misses_(registry.counter("mem.row_misses")),
      c_dispatches_(registry.counter("mem.dispatch_rounds")),
      c_fault_retries_(registry.counter("mem.fault_retries")),
      c_failed_lines_(registry.counter("mem.failed_lines")),
      c_brownout_writes_(registry.counter("mem.brownout_writes")),
      c_stuck_remaps_(registry.counter("mem.stuck_remaps")),
      c_palp_overlap_reads_(registry.counter("mem.palp_overlapped_reads")),
      c_palp_pump_stalls_(registry.counter("mem.palp_pump_stalls")),
      c_palp_write_overlaps_(registry.counter("mem.palp_write_overlaps")),
      c_enc_writes_(registry.counter("mem.enc_writes")),
      c_enc_coded_units_(registry.counter("mem.enc_coded_units")),
      c_enc_tag_bits_(registry.counter("mem.enc_tag_bits")),
      a_read_latency_(registry.accumulator("mem.read_latency_ns")),
      a_write_latency_(registry.accumulator("mem.write_latency_ns")),
      a_write_units_(registry.accumulator("mem.write_units")),
      a_write_service_(registry.accumulator("mem.write_service_ns")),
      a_power_util_(registry.accumulator("mem.power_utilization")),
      a_batch_lines_(registry.accumulator("mem.batch_lines")),
      a_batch_occupancy_(registry.accumulator("mem.batch_occupancy")),
      a_palp_batch_spread_(registry.accumulator("mem.palp_batch_spread")),
      h_read_latency_(registry.histogram("mem.read_latency_hist_ns")),
      h_write_latency_(registry.histogram("mem.write_latency_hist_ns")) {
  TW_EXPECTS(cfg_.valid());
  pcm_.validate();
  if (scheme_.transforms_content()) {
    // The scheme stores a coded image (content-encoder pre-stage): route
    // every logical readback — demand reads, gap-move migration, the
    // generator's read-modify-write stream — through its decoder.
    store_.set_decoder(&scheme_,
                       [](const void* ctx, const pcm::LineBuf& l) {
                         return static_cast<const schemes::WriteScheme*>(ctx)
                             ->decode_stored(l);
                       });
  }
  read_ready_.reserve(map_.total_subarrays());
  if (palp_on_) {
    for (auto& v : palp_active_) v.reserve(cfg_.palp.write_ways);
  }
}

// -- Node plumbing --------------------------------------------------------

u32 Controller::make_node(MemoryRequest&& req, u32 bucket) {
  const u32 id = nodes_.alloc();
  ReqNode& n = nodes_[id];
  n.req = std::move(req);
  n.bucket = bucket;
  return id;
}

MemoryRequest Controller::take_node(u32 id) {
  MemoryRequest req = std::move(nodes_[id].req);
  nodes_.release(id);
  return req;
}

void Controller::link_read(u32 id) {
  read_age_.push_back(nodes_, id);
  const u32 sub = nodes_[id].bucket;
  read_by_sub_[sub].push_back(nodes_, id);
  bitmap_set(subs_with_reads_, sub);
  read_q_peak_ = std::max(read_q_peak_, read_age_.size());
}

void Controller::unlink_read(u32 id) {
  const u32 sub = nodes_[id].bucket;
  read_age_.erase(nodes_, id);
  read_by_sub_[sub].erase(nodes_, id);
  if (read_by_sub_[sub].empty()) bitmap_clear(subs_with_reads_, sub);
}

void Controller::link_write(u32 id) {
  write_age_.push_back(nodes_, id);
  const u32 bank = nodes_[id].bucket;
  write_by_bank_[bank].push_back(nodes_, id);
  bitmap_set(banks_with_writes_, bank);
  write_q_peak_ = std::max(write_q_peak_, write_age_.size());
}

void Controller::unlink_write(u32 id) {
  const u32 bank = nodes_[id].bucket;
  write_age_.erase(nodes_, id);
  write_by_bank_[bank].erase(nodes_, id);
  if (write_by_bank_[bank].empty()) bitmap_clear(banks_with_writes_, bank);
}

// -- Open-row tracking ----------------------------------------------------

bool Controller::row_hit(u32 bank, Addr phys) const {
  const OpenRow& open = open_row_[bank];
  return open.valid && open.row == map_.decode(phys).row;
}

void Controller::note_row_activate(u32 bank, Addr phys) {
  OpenRow& open = open_row_[bank];
  const u64 row = map_.decode(phys).row;
  if (open.valid && open.row == row) {
    c_row_hits_.inc();
  } else {
    c_row_misses_.inc();
  }
  open.row = row;
  open.valid = true;
}

// -- Enqueue --------------------------------------------------------------

bool Controller::enqueue(MemoryRequest req) {
  req.addr = map_.line_of(req.addr);
  req.enqueue_tick = sim_.now();
  req.id = next_id_++;

  if (req.is_write()) {
    TW_EXPECTS(req.data.units() == store_.units_per_line());
    // Buckets are keyed by the *logical* address: identical to the
    // physical location when the mapping is static (the only case the
    // indexed paths consult them), and a harmless advisory grouping
    // otherwise.
    const u32 bank = map_.flat_bank(req.addr);
    if (cfg_.write_coalescing) {
      if (static_mapping_) {
        // Same-line writes necessarily share the bank: scan one bucket.
        const BucketList& list = write_by_bank_[bank];
        for (u32 id = list.head(); id != kNilIndex;
             id = list.next(nodes_, id)) {
          if (nodes_[id].req.addr == req.addr) {
            nodes_[id].req.data = req.data;
            c_coalesced_.inc();
            if (trace::on<kCat>()) {
              trace::emit_instant(kCat, trace::Op::kWriteCoalesce,
                                  write_queue_track(cfg_.track_base), sim_.now(), req.id,
                                  nodes_[id].req.id);
            }
            return true;
          }
        }
      } else {
        for (u32 id = write_age_.head(); id != kNilIndex;
             id = write_age_.next(nodes_, id)) {
          if (nodes_[id].req.addr == req.addr) {
            nodes_[id].req.data = req.data;
            c_coalesced_.inc();
            if (trace::on<kCat>()) {
              trace::emit_instant(kCat, trace::Op::kWriteCoalesce,
                                  write_queue_track(cfg_.track_base), sim_.now(), req.id,
                                  nodes_[id].req.id);
            }
            return true;
          }
        }
      }
    }
    if (write_age_.size() >= cfg_.write_queue_entries) return false;
    const u64 req_id = req.id;
    link_write(make_node(std::move(req), bank));
    if (trace::on<kCat>()) {
      trace::emit_instant(kCat, trace::Op::kWriteEnqueue, write_queue_track(cfg_.track_base),
                          sim_.now(), req_id, write_age_.size());
    }
    if (write_age_.size() >= cfg_.write_queue_entries) set_draining(true);
  } else {
    if (cfg_.read_forwarding) {
      // Youngest match wins, as the reference's reverse iteration; the
      // bucket list preserves relative queue order, so scanning it
      // backwards finds the same entry.
      u32 match = kNilIndex;
      if (static_mapping_) {
        const BucketList& list = write_by_bank_[map_.flat_bank(req.addr)];
        for (u32 id = list.tail(); id != kNilIndex;
             id = list.prev(nodes_, id)) {
          if (nodes_[id].req.addr == req.addr) {
            match = id;
            break;
          }
        }
      } else {
        for (u32 id = write_age_.tail(); id != kNilIndex;
             id = write_age_.prev(nodes_, id)) {
          if (nodes_[id].req.addr == req.addr) {
            match = id;
            break;
          }
        }
      }
      if (match != kNilIndex) {
        c_forwarded_.inc();
        c_reads_.inc();
        if (trace::on<kCat>()) {
          trace::emit_instant(kCat, trace::Op::kReadForward, read_queue_track(cfg_.track_base),
                              sim_.now(), req.id, nodes_[match].req.id);
        }
        MemoryRequest done = req;
        done.start_tick = sim_.now();
        done.complete_tick = sim_.now() + cfg_.forward_latency;
        const double lat_ns = to_ns(cfg_.forward_latency);
        a_read_latency_.add(lat_ns);
        h_read_latency_.add(static_cast<u64>(lat_ns));
        const u32 slot = acquire_read_slot(std::move(done));
        sim_.schedule_in(
            cfg_.forward_latency,
            [this, slot] {
              const MemoryRequest fwd = take_read_slot(slot);
              if (on_read_) on_read_(fwd);
            },
            sim::Priority::kDeviceComplete);
        return true;
      }
    }
    if (read_age_.size() >= cfg_.read_queue_entries) return false;
    const u64 req_id = req.id;
    const u32 sub = map_.flat_subarray(req.addr);
    link_read(make_node(std::move(req), sub));
    if (trace::on<kCat>()) {
      trace::emit_instant(kCat, trace::Op::kReadEnqueue, read_queue_track(cfg_.track_base),
                          sim_.now(), req_id, read_age_.size());
    }
  }

  if (!dispatch_scheduled_) {
    dispatch_scheduled_ = true;
    sim_.schedule_in(0, [this] { dispatch(); }, sim::Priority::kController);
  }
  return true;
}

bool Controller::idle() const {
  return read_age_.empty() && write_age_.empty() && inflight_ == 0 &&
         paused_count_ == 0;
}

Addr Controller::physical_of(Addr logical_line_addr) {
  if (!cfg_.wear_leveling) return logical_line_addr;
  const u64 li = map_.line_index(logical_line_addr);
  const u64 n = cfg_.start_gap.region_lines;
  const u64 region = li / n;
  const u64 within = li % n;
  const u64 slot = leveler_for(region).map(within);
  const u64 phys_line = region * (n + 1) + slot;
  return phys_line * map_.line_bytes();
}

u64 Controller::gap_moves() const { return c_gap_moves_.value(); }

u32 Controller::acquire_read_slot(MemoryRequest&& req) {
  if (!free_read_slots_.empty()) {
    const u32 slot = free_read_slots_.back();
    free_read_slots_.pop_back();
    read_pool_[slot] = std::move(req);
    return slot;
  }
  read_pool_.push_back(std::move(req));
  return static_cast<u32>(read_pool_.size() - 1);
}

MemoryRequest Controller::take_read_slot(u32 slot) {
  MemoryRequest req = std::move(read_pool_[slot]);
  free_read_slots_.push_back(slot);
  return req;
}

StartGapLeveler& Controller::leveler_for(u64 region) {
  // Regions are dense under the bounded trace address spaces: a flat
  // array replaces the reference's unordered_map lookup on the write
  // issue path.
  if (region >= levelers_.size()) levelers_.resize(region + 1);
  if (!levelers_[region].has_value()) levelers_[region].emplace(cfg_.start_gap);
  return *levelers_[region];
}

bool Controller::read_waiting_for_subarray(u32 subarray) {
  if (static_mapping_) return !read_by_sub_[subarray].empty();
  for (u32 id = read_age_.head(); id != kNilIndex;
       id = read_age_.next(nodes_, id)) {
    if (eff_sub(physical_of(nodes_[id].req.addr)) == subarray) {
      return true;
    }
  }
  return false;
}

void Controller::schedule_dispatch() {
  if (dispatch_scheduled_) return;
  dispatch_scheduled_ = true;
  sim_.schedule_in(0, [this] { dispatch(); }, sim::Priority::kController);
}

// -- Scheduling -----------------------------------------------------------

void Controller::set_draining(bool on) {
  if (draining_ == on) return;
  draining_ = on;
  if (trace::on<kCat>()) {
    trace::emit_instant(kCat, on ? trace::Op::kDrainStart : trace::Op::kDrainEnd,
                        write_queue_track(cfg_.track_base), sim_.now(), write_age_.size());
  }
}

void Controller::dispatch() {
  dispatch_scheduled_ = false;
  c_dispatches_.inc();
  const Tick now = sim_.now();
  if (trace::on<kCat>()) {
    trace::emit_instant(kCat, trace::Op::kDispatch, read_queue_track(cfg_.track_base), now,
                        read_age_.size(), write_age_.size());
  }

  // Reads first (FRFCFS priority). The indexed path needs the ready set
  // to be stable across the sweep: write pausing can free a subarray
  // mid-sweep (a pause boundary may land exactly on `now`), so it falls
  // back to the exact age-ordered walk, as does a non-static mapping.
  if (static_mapping_ && !cfg_.write_pausing) {
    dispatch_reads_indexed(now);
  } else {
    dispatch_reads_exact(now);
  }

  if (draining_ && write_age_.size() <= cfg_.drain_low_watermark) {
    set_draining(false);
  }
  const bool issue_writes =
      draining_ ||
      (cfg_.drain == ControllerConfig::DrainPolicy::kOpportunistic &&
       read_age_.empty() && !write_age_.empty());
  if (issue_writes) {
    if (static_mapping_) {
      dispatch_writes_indexed(now);
    } else {
      dispatch_writes_exact(now);
    }
  }

  if (paused_count_ > 0) {
    for (u32 bank = 0; bank < paused_write_.size(); ++bank) {
      if (paused_write_[bank].has_value() && banks_[bank].idle_at(now) &&
          subarrays_[paused_write_[bank]->subarray].idle_at(now) &&
          !read_waiting_for_subarray(paused_write_[bank]->subarray)) {
        resume_paused(bank);
      }
    }
  }
}

u32 Controller::read_cursor(u32 sub, bool* hit_out) const {
  const BucketList& list = read_by_sub_[sub];
  const u32 head = list.head();
  *hit_out = false;
  if (head == kNilIndex || !cfg_.row_hit_first) return head;
  const u32 bank = sub / map_.subarrays_per_bank();
  for (u32 id = head; id != kNilIndex; id = list.next(nodes_, id)) {
    if (row_hit(bank, nodes_[id].req.addr)) {
      *hit_out = true;
      return id;
    }
  }
  return head;
}

u32 Controller::write_cursor(u32 bank, u32 from, Tick now,
                             bool* hit_out) const {
  const BucketList& list = write_by_bank_[bank];
  u32 first_ready = kNilIndex;
  for (u32 id = from; id != kNilIndex; id = list.next(nodes_, id)) {
    const Addr addr = nodes_[id].req.addr;  // physical == logical here
    if (!subarrays_[map_.flat_subarray(addr)].idle_at(now)) continue;
    if (!cfg_.row_hit_first) {
      *hit_out = false;
      return id;
    }
    if (row_hit(bank, addr)) {
      *hit_out = true;
      return id;
    }
    if (first_ready == kNilIndex) first_ready = id;
  }
  *hit_out = false;
  return first_ready;
}

void Controller::dispatch_reads_indexed(Tick now) {
  // Issue every ready read in age order. Within one dispatch, issuing
  // only occupies the issuing subarray (the ready set shrinks
  // monotonically) and the space callback can only append younger
  // requests, so collecting each ready bucket's head once and issuing
  // the sorted batch reproduces the exact issue order of repeated
  // best-ready selection — O(s + k log s) per round instead of O(k*s).
  //
  // The outer loop always re-collects (new arrivals during the batch are
  // younger than every batch element, so they issue strictly after it —
  // on the next pass) and terminates on an empty collection; the common
  // tail is one empty bitmap scan. Two cases additionally cut a batch
  // short to force the fresh pass early: a zero-latency service leaves
  // the issued subarray ready with a new head, and under row-hit-first a
  // younger arrival can outrank queued misses.
  for (;;) {
    read_ready_.clear();
    bitmap_for_each(subs_with_reads_, [&](u32 sub) {
      if (!subarrays_[sub].idle_at(now)) return;
      bool hit = false;
      const u32 id = read_cursor(sub, &hit);
      if (id != kNilIndex) read_ready_.push_back({id, sub, hit});
    });
    if (read_ready_.empty()) break;
    std::sort(read_ready_.begin(), read_ready_.end(),
              [&](const ReadCursor& a, const ReadCursor& b) {
                if (a.hit != b.hit) return a.hit;
                return nodes_[a.node].req.id < nodes_[b.node].req.id;
              });
    // PALP holds reads back at issue time (a skipped cursor stays linked
    // and is re-collected next pass), so a pass that admits nothing must
    // terminate the loop — the stalled reads re-arm on the pump-unload
    // completion's dispatch.
    bool issued_any = false;
    for (const ReadCursor& cur : read_ready_) {
      const u32 sub = cur.sub;
      if (palp_on_) {
        const u32 bank = sub / map_.subarrays_per_bank();
        if (!palp_read_admissible(bank, now)) {
          note_palp_stall(bank, now);
          continue;
        }
      }
      unlink_read(cur.node);
      issue_read(take_node(cur.node));
      issued_any = true;
      notify_space();
      if (cfg_.row_hit_first || subarrays_[sub].idle_at(now)) break;
    }
    if (!issued_any) break;
  }
}

void Controller::dispatch_reads_exact(Tick now) {
  u32 id = read_age_.head();
  while (id != kNilIndex) {
    const u32 nxt = read_age_.next(nodes_, id);
    const Addr phys = physical_of(nodes_[id].req.addr);
    const u32 subarray = eff_sub(phys);
    if (subarrays_[subarray].idle_at(now)) {
      if (palp_on_ && !palp_read_admissible(eff_bank(phys), now)) {
        // Partition free but the pump's read-while-write cap is spent:
        // the read waits for a completion to re-trigger dispatch.
        note_palp_stall(eff_bank(phys), now);
      } else {
        unlink_read(id);
        issue_read(take_node(id));
        notify_space();
      }
    } else if (cfg_.write_pausing) {
      try_pause(eff_bank(phys), subarray);
    }
    id = nxt;
  }
}

void Controller::dispatch_writes_indexed(Tick now) {
  // One cursor per ready bank (idle, unpaused, non-empty bucket), then a
  // k-way min-selection by age. Issuing on one bank never invalidates
  // another bank's cursor within a dispatch — distinct banks own
  // disjoint subarrays — so only the issuing bank's cursor is refreshed.
  struct Cursor {
    u32 node;
    u32 bank;
    bool hit;
  };
  InlineVec<Cursor, 64> ready;
  bitmap_for_each(banks_with_writes_, [&](u32 bank) {
    if (!bank_ready_for_write(bank, now) || paused_write_[bank].has_value()) {
      return;
    }
    bool hit = false;
    const u32 id = write_cursor(bank, write_by_bank_[bank].head(), now, &hit);
    if (id != kNilIndex) ready.push_back({id, bank, hit});
  });

  while (!ready.empty()) {
    // The strict policy stops the sweep the moment draining clears.
    if (!draining_ &&
        cfg_.drain != ControllerConfig::DrainPolicy::kOpportunistic) {
      break;
    }
    u32 best = 0;
    for (u32 i = 1; i < ready.size(); ++i) {
      const bool better =
          (ready[i].hit != ready[best].hit)
              ? ready[i].hit
              : nodes_[ready[i].node].req.id < nodes_[ready[best].node].req.id;
      if (better) best = i;
    }
    const Cursor cur = ready[best];
    ready[best] = ready[ready.size() - 1];
    ready.pop_back();

    const u32 bank = cur.bank;
    u32 resume_from = kNilIndex;
    // A multi-line batch packs against the full bank budget, so under
    // PALP it needs the pump exclusively; while partition writes are
    // drawing, fall back to issuing the candidate as a single write.
    const bool can_batch =
        cfg_.write_batch > 1 &&
        (!palp_on_ || pumps_[bank].can_admit_exclusive());
    if (can_batch) {
      // Batch formation walks only this bank's list: the candidate plus
      // its same-bank successors up to the batch limit, irrespective of
      // subarray state (matching the reference gather, which filters the
      // global queue by bank only). Under PALP the gather is
      // spread-first: prefer lines in distinct partitions (overlap-
      // friendly schedules leave the other partitions' sense amps free
      // for reads), then fill the remainder in age order.
      std::vector<MemoryRequest> batch;
      if (palp_on_) {
        const u32 spb = map_.subarrays_per_bank();
        const u32 sub_base = bank * spb;
        InlineVec<u32, 64> chosen;
        InlineVec<u64, 4> seen;
        seen.resize((spb + 63) / 64, 0);
        const std::span<u64> smask{seen.data(), seen.size()};
        for (u32 id = cur.node;
             id != kNilIndex && chosen.size() < cfg_.write_batch;
             id = write_by_bank_[bank].next(nodes_, id)) {
          const u32 local = map_.flat_subarray(nodes_[id].req.addr) - sub_base;
          if (bitmap_test(smask, local)) continue;
          bitmap_set(smask, local);
          chosen.push_back(id);
        }
        if (chosen.size() < cfg_.write_batch) {
          for (u32 id = cur.node;
               id != kNilIndex && chosen.size() < cfg_.write_batch;
               id = write_by_bank_[bank].next(nodes_, id)) {
            bool taken = false;
            for (const u32 c : chosen) {
              if (c == id) {
                taken = true;
                break;
              }
            }
            if (!taken) chosen.push_back(id);
          }
        }
        // Restore age order (node req ids are monotonic in arrival).
        std::sort(chosen.begin(), chosen.end(), [&](u32 a, u32 b) {
          return nodes_[a].req.id < nodes_[b].req.id;
        });
        for (const u32 id : chosen) {
          unlink_write(id);
          batch.push_back(take_node(id));
        }
        // Spread picking leaves skipped older entries on the list, so
        // the zero-latency re-derive below rescans from the head.
        resume_from = write_by_bank_[bank].head();
      } else {
        u32 id = cur.node;
        while (id != kNilIndex && batch.size() < cfg_.write_batch) {
          const u32 nxt = write_by_bank_[bank].next(nodes_, id);
          unlink_write(id);
          batch.push_back(take_node(id));
          id = nxt;
        }
        resume_from = id;
      }
      if (batch.size() > 1) {
        issue_write_batch(std::move(batch));
      } else {
        issue_write(std::move(batch.front()));
      }
    } else {
      resume_from = write_by_bank_[bank].next(nodes_, cur.node);
      unlink_write(cur.node);
      issue_write(take_node(cur.node));
    }
    notify_space();
    if (draining_ && write_age_.size() <= cfg_.drain_low_watermark) {
      set_draining(false);
    }

    // Normally the bank is now busy until the service completes and it
    // drops out of this round. A zero-latency service plan (e.g. a
    // preset scheme with no RESETs pending) leaves it idle, in which
    // case the age-ordered sweep would keep walking: re-derive this
    // bank's cursor from the issued node's successor (earlier entries
    // were unissuable, and nothing un-occupies within a dispatch).
    // row_hit_first rescans from the head because the open row changed.
    // Under PALP the bank re-arms whenever the pump still has a free
    // way — that is the point: a second partition write can start while
    // the first is in flight.
    if (bank_ready_for_write(bank, now) &&
        !paused_write_[bank].has_value()) {
      const u32 from =
          cfg_.row_hit_first ? write_by_bank_[bank].head() : resume_from;
      if (from != kNilIndex) {
        bool hit = false;
        const u32 id = write_cursor(bank, from, now, &hit);
        if (id != kNilIndex) ready.push_back({id, bank, hit});
      }
    }
  }
}

void Controller::dispatch_writes_exact(Tick now) {
  u32 id = write_age_.head();
  while (id != kNilIndex) {
    if (!draining_ &&
        cfg_.drain != ControllerConfig::DrainPolicy::kOpportunistic) {
      break;
    }
    u32 nxt = write_age_.next(nodes_, id);
    const Addr phys_w = physical_of(nodes_[id].req.addr);
    const u32 bank = eff_bank(phys_w);
    const u32 subarray_w = eff_sub(phys_w);
    if (bank_ready_for_write(bank, now) &&
        subarrays_[subarray_w].idle_at(now) &&
        !paused_write_[bank].has_value()) {
      unlink_write(id);
      MemoryRequest req = take_node(id);
      if (cfg_.write_batch > 1 &&
          (!palp_on_ || pumps_[bank].can_admit_exclusive())) {
        std::vector<MemoryRequest> batch;
        batch.push_back(std::move(req));
        u32 scan = nxt;
        while (scan != kNilIndex && batch.size() < cfg_.write_batch) {
          const u32 snxt = write_age_.next(nodes_, scan);
          if (eff_bank(physical_of(nodes_[scan].req.addr)) == bank) {
            unlink_write(scan);
            batch.push_back(take_node(scan));
          }
          scan = snxt;
        }
        if (batch.size() > 1) {
          issue_write_batch(std::move(batch));
        } else {
          issue_write(std::move(batch.front()));
        }
        // Legacy restart (reference: `it = write_q_.begin()` after the
        // batch erase): gap moves triggered by the issue can remap older
        // skipped entries onto now-idle banks, so rescan from the head.
        nxt = write_age_.head();
      } else {
        issue_write(std::move(req));
      }
      notify_space();
      if (draining_ && write_age_.size() <= cfg_.drain_low_watermark) {
        set_draining(false);
      }
    }
    id = nxt;
  }
}

// -- Fault injection ------------------------------------------------------

void Controller::note_stuck_remap(Addr phys) {
  if (!fault_remap_) return;
  const u32 raw = map_.flat_bank(phys);
  const u32 eff = fault_->remap_bank(raw);
  if (eff == raw) return;
  c_stuck_remaps_.inc();
  if (trace::on<kFaultCat>()) {
    trace::emit_instant(kFaultCat, trace::Op::kStuckRemap, fault_track(cfg_.track_base),
                        sim_.now(), raw, eff);
  }
}

double Controller::begin_plan_scope(Tick now) {
  if (fault_ == nullptr) return 1.0;
  const double factor = fault_->budget_factor(now);
  if (factor != 1.0) {
    scheme_.set_budget_scale(factor);
    c_brownout_writes_.inc();
    if (trace::on<kFaultCat>()) {
      trace::emit_instant(kFaultCat, trace::Op::kBrownoutWrite, fault_track(cfg_.track_base),
                          now, scheme_.effective_budget(),
                          pcm_.bank_power_budget());
    }
  }
  return factor;
}

void Controller::end_plan_scope(double factor) {
  if (factor != 1.0) scheme_.set_budget_scale(1.0);
}

// -- PALP admission -------------------------------------------------------

u32 Controller::palp_write_allowance(Tick now) const {
  if (fault_ == nullptr) return cfg_.palp.write_ways;
  // Brown-out shrinks the concurrent-partition allowance with the same
  // factor that shrinks the packing budget; at least one write way
  // always remains (the legacy serialized behavior).
  return fault_->palp_allowance(cfg_.palp.write_ways, now, 1);
}

u32 Controller::rww_allowance(Tick now) const {
  if (fault_ == nullptr) return cfg_.palp.max_rww_reads;
  // The read cap may shrink to zero: inside a deep brown-out reads wait
  // for the pump to unload entirely (completions re-trigger dispatch,
  // so no forward-progress risk).
  return fault_->palp_allowance(cfg_.palp.max_rww_reads, now, 0);
}

bool Controller::palp_read_admissible(u32 bank, Tick now) const {
  return pumps_[bank].can_admit_read(rww_allowance(now));
}

bool Controller::bank_ready_for_write(u32 bank, Tick now) const {
  if (!palp_on_) return banks_[bank].idle_at(now);
  return pumps_[bank].can_admit_write(palp_write_allowance(now));
}

void Controller::note_palp_stall(u32 bank, Tick now) {
  c_palp_pump_stalls_.inc();
  pumps_[bank].note_stall();
  if (trace::on<kPalpCat>()) {
    trace::emit_instant(kPalpCat, trace::Op::kPalpPumpStall,
                        palp_track(cfg_.track_base, bank), now,
                        pumps_[bank].rww_reads(),
                        pumps_[bank].active_writes());
  }
}

double Controller::begin_palp_plan_scope(Tick now) {
  // A partition write plans against its share of the pump: the brown-out
  // factor (if any) divided across the configured write ways. write_ways
  // is the nominal divisor even when brown-out shrinks the admission
  // allowance, so the worst-case concurrent draw stays within
  // factor * budget.
  double factor = 1.0;
  if (fault_ != nullptr) {
    factor = fault_->budget_factor(now);
    if (factor != 1.0) c_brownout_writes_.inc();
  }
  const bool brownout = factor != 1.0;
  factor /= static_cast<double>(cfg_.palp.write_ways);
  if (factor != 1.0) scheme_.set_budget_scale(factor);
  if (brownout && trace::on<kFaultCat>()) {
    trace::emit_instant(kFaultCat, trace::Op::kBrownoutWrite,
                        fault_track(cfg_.track_base), now,
                        scheme_.effective_budget(),
                        pcm_.bank_power_budget());
  }
  return factor;
}

void Controller::complete_palp_write(u32 bank, u64 epoch) {
  auto& live = palp_active_[bank];
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (live[i].epoch != epoch) continue;
    MemoryRequest req = std::move(live[i].req);
    const Tick service = live[i].service;
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    pumps_[bank].end_write();
    --inflight_;
    if (trace::on<kCat>()) {
      trace::emit_instant(kCat, trace::Op::kWriteComplete,
                          bank_track(cfg_.track_base, bank), sim_.now(),
                          req.id, service);
    }
    req.complete_tick = sim_.now();
    const double lat_ns = to_ns(req.complete_tick - req.enqueue_tick);
    a_write_latency_.add(lat_ns);
    h_write_latency_.add(static_cast<u64>(lat_ns));
    if (on_write_) on_write_(req);
    schedule_dispatch();
    return;
  }
  TW_FAIL("PALP completion epoch not found");
}

Tick Controller::apply_line_faults(Addr phys,
                                   const schemes::ServicePlan& plan) {
  if (fault_ == nullptr) return 0;
  const u32 line_bits =
      store_.units_per_line() * pcm_.geometry.data_unit_bits;
  const fault::LineFaultOutcome out = fault_->plan_line_faults(
      phys, ++fault_seq_, plan, scheme_, wear_.line(phys).bits_programmed,
      line_bits);
  if (out.attempts > 0) {
    energy_.add_write(out.retry_pulses);
    wear_.record_retry(phys, out.retry_pulses);
    c_fault_retries_.inc(out.attempts);
    if (trace::on<kFaultCat>()) {
      trace::emit_instant(kFaultCat, trace::Op::kFaultRetry, fault_track(cfg_.track_base),
                          sim_.now(), out.attempts, out.extra_latency);
    }
  }
  if (out.line_failed) {
    // Retries exhausted: surface the FailedLine stat (higher-level ECC's
    // problem) and keep going — resilience means not asserting here.
    c_failed_lines_.inc();
    if (trace::on<kFaultCat>()) {
      trace::emit_instant(kFaultCat, trace::Op::kLineFailed, fault_track(cfg_.track_base),
                          sim_.now(), out.failed_sets + out.failed_resets,
                          phys);
    }
  }
  return out.extra_latency;
}

// -- Device issue paths ---------------------------------------------------

void Controller::issue_read(MemoryRequest req) {
  const Tick now = sim_.now();
  const Addr phys = physical_of(req.addr);
  const u32 subarray = eff_sub(phys);
  const u32 bank = eff_bank(phys);
  note_stuck_remap(phys);
  const Tick service = scheme_.read_latency() + cfg_.read_bus_time;
  subarrays_[subarray].occupy(now, service);
  ++inflight_;
  c_reads_.inc();
  // A read admitted while the pump is loaded counts against PALP's
  // read-after-write-current limit until its data returns.
  bool rww = false;
  if (palp_on_ && pumps_[bank].loaded()) {
    rww = true;
    pumps_[bank].begin_rww_read();
    c_palp_overlap_reads_.inc();
    if (trace::on<kPalpCat>()) {
      trace::emit_instant(kPalpCat, trace::Op::kPalpReadOverlap,
                          palp_track(cfg_.track_base, bank), now, req.id,
                          pumps_[bank].active_writes());
    }
  }
  if (trace::on<kCat>()) {
    trace::emit_span(kCat, trace::Op::kReadService, sub_track(cfg_.track_base, subarray), now,
                     service, req.id);
  }
  note_row_activate(bank, phys);
  energy_.add_read(store_.units_per_line() * pcm_.geometry.data_unit_bits);

  req.start_tick = now;
  req.complete_tick = now + service;
  const double lat_ns = to_ns(req.complete_tick - req.enqueue_tick);
  a_read_latency_.add(lat_ns);
  h_read_latency_.add(static_cast<u64>(lat_ns));

  const u32 slot = acquire_read_slot(std::move(req));
  sim_.schedule_in(
      service,
      [this, slot, bank, rww] {
        --inflight_;
        if (rww) pumps_[bank].end_rww_read();
        const MemoryRequest done = take_read_slot(slot);
        if (on_read_) on_read_(done);
        schedule_dispatch();
      },
      sim::Priority::kDeviceComplete);
}

void Controller::issue_write(MemoryRequest req, Tick service_override) {
  const Tick now = sim_.now();
  const Addr phys = physical_of(req.addr);
  const u32 bank = eff_bank(phys);
  const u32 subarray = eff_sub(phys);

  Tick service = service_override;
  if (service == 0) {
    note_stuck_remap(phys);
    pcm::LineBuf& line = store_.line(phys);
    // The context hands the analysis stage (packer, FSM expansion) an
    // absolute time base + bank track for its own emissions.
    trace::ScopedContext tctx(now, bank_track(cfg_.track_base, bank));
    // Writes planned inside a charge-pump brown-out window pack against
    // the shrunken budget; the scope stays open through the fault pricing
    // so retry sub-requests see the same budget. PALP additionally
    // divides the budget across the pump's write ways, since other
    // partitions may start drawing while this write is in flight.
    const double bscale =
        palp_on_ ? begin_palp_plan_scope(now) : begin_plan_scope(now);
    const schemes::ServicePlan plan = scheme_.plan_write(line, req.data);
    service = plan.latency;

    c_writes_.inc();
    if (plan.silent) c_silent_.inc();
    c_flipped_units_.inc(plan.flipped_units);
    if (plan.enc.active) {
      c_enc_writes_.inc();
      c_enc_coded_units_.inc(plan.enc.coded_units);
      c_enc_tag_bits_.inc(plan.enc.tag_bits);
      if (trace::on<kEncodeCat>()) {
        trace::emit_instant(kEncodeCat, trace::Op::kEncodeLine,
                            encode_track(cfg_.track_base, bank), now,
                            plan.enc.coded_units, plan.enc.tag_bits);
      }
    }
    energy_.add_write(plan.programmed);
    if (plan.background.total() > 0) {
      energy_.add_write(plan.background);
      wear_.record(phys, plan.background);
    }
    if (plan.read_before_write) {
      energy_.add_read(store_.units_per_line() * pcm_.geometry.data_unit_bits);
    }
    wear_.record(phys, plan.programmed);
    service += apply_line_faults(phys, plan);
    end_plan_scope(bscale);
    a_write_units_.add(plan.write_units);
    a_write_service_.add(to_ns(service));
    if (plan.power_util > 0.0) a_power_util_.add(plan.power_util);
    note_row_activate(bank, phys);
  }

  if (palp_on_) {
    // Partition write: the bank interval may overlap other partitions'
    // writes (the pump admitted this way); completion is keyed by epoch
    // in the per-bank in-flight list instead of the single active slot.
    banks_[bank].occupy_overlapping(now, service);
    subarrays_[subarray].occupy(now, service);
    ++inflight_;
    pcm::ChargePump& pump = pumps_[bank];
    const bool overlapped = pump.active_writes() > 0;
    pump.begin_write();
    if (overlapped) c_palp_write_overlaps_.inc();
    if (trace::on<kCat>()) {
      trace::emit_span(kCat, trace::Op::kWriteService,
                       bank_track(cfg_.track_base, bank), now, service,
                       req.id);
    }
    if (trace::on<kPalpCat>()) {
      trace::emit_span(kPalpCat, trace::Op::kPalpWriteSpan,
                       palp_track(cfg_.track_base, bank), now, service,
                       subarray);
      if (overlapped) {
        trace::emit_instant(kPalpCat, trace::Op::kPalpWriteOverlap,
                            palp_track(cfg_.track_base, bank), now, req.id,
                            pump.active_writes());
      }
    }
    const u64 epoch = ++bank_epoch_[bank];
    PalpWrite pw;
    pw.req = std::move(req);
    pw.epoch = epoch;
    pw.service = service;
    pw.subarray = subarray;
    palp_active_[bank].push_back(std::move(pw));
    sim_.schedule_in(
        service, [this, bank, epoch] { complete_palp_write(bank, epoch); },
        sim::Priority::kDeviceComplete);

    if (cfg_.wear_leveling && service_override == 0) {
      const u64 region = map_.line_index(palp_active_[bank].back().req.addr) /
                         cfg_.start_gap.region_lines;
      StartGapLeveler& leveler = leveler_for(region);
      if (const auto move = leveler.on_write()) {
        apply_gap_move(region, *move);
      }
    }
    return;
  }

  banks_[bank].occupy(now, service);
  subarrays_[subarray].occupy(now, service);
  ++inflight_;
  if (trace::on<kCat>()) {
    trace::emit_span(kCat, trace::Op::kWriteService, bank_track(cfg_.track_base, bank), now,
                     service, req.id);
  }

  TW_ASSERT(!active_write_[bank].has_value());
  const u64 epoch = ++bank_epoch_[bank];
  ActiveWrite active;
  active.req = std::move(req);
  active.start = now;
  active.end = now + service;
  active.epoch = epoch;
  active.service = service;
  active.subarray = subarray;
  active_write_[bank] = std::move(active);

  sim_.schedule_in(
      service, [this, bank, epoch] { complete_write(bank, epoch); },
      sim::Priority::kDeviceComplete);

  if (cfg_.wear_leveling && service_override == 0) {
    const u64 region = map_.line_index(active_write_[bank]->req.addr) /
                       cfg_.start_gap.region_lines;
    StartGapLeveler& leveler = leveler_for(region);
    if (const auto move = leveler.on_write()) {
      apply_gap_move(region, *move);
    }
  }
}

void Controller::issue_write_batch(std::vector<MemoryRequest> reqs) {
  TW_EXPECTS(reqs.size() >= 2);
  const Tick now = sim_.now();
  const u32 bank = eff_bank(physical_of(reqs.front().addr));

  // Scratch for the scheme call: batches are bounded by write_batch
  // (small), so these stay in inline storage on the steady-state path.
  InlineVec<pcm::LineBuf*, 16> lines;
  InlineVec<pcm::LogicalLine, 16> datas;
  InlineVec<Addr, 16> phys;
  for (const auto& r : reqs) {
    const Addr p = physical_of(r.addr);
    TW_ASSERT(eff_bank(p) == bank);
    phys.push_back(p);
    (void)store_.line(p);
    datas.push_back(r.data);
  }
  for (const Addr p : phys) lines.push_back(&store_.line(p));

  trace::ScopedContext tctx(now, bank_track(cfg_.track_base, bank));
  const double bscale = begin_plan_scope(now);
  // Under PALP the scheme sees which partition each line lands in, so
  // partition-aware packers can record (and tests can assert on) the
  // spread the controller's gather produced.
  InlineVec<u32, 16> parts;
  if (palp_on_) {
    const u32 sub_base0 = bank * map_.subarrays_per_bank();
    for (const Addr p : phys) parts.push_back(eff_sub(p) - sub_base0);
  }
  const schemes::BatchServicePlan batch =
      palp_on_ ? scheme_.plan_write_batch({lines.data(), lines.size()},
                                          {datas.data(), datas.size()},
                                          {parts.data(), parts.size()})
               : scheme_.plan_write_batch({lines.data(), lines.size()},
                                          {datas.data(), datas.size()});
  TW_ASSERT(batch.per_line.size() == reqs.size());
  // Batch-occupancy metrics: how many lines actually shared one packed
  // schedule and how full that schedule was (0 for serializing schemes).
  a_batch_lines_.add(static_cast<double>(reqs.size()));
  if (batch.packed_lines > 0 && batch.occupancy > 0.0) {
    a_batch_occupancy_.add(batch.occupancy);
  }

  // Fault pricing extends the whole batch's bank occupancy: the retry
  // sub-requests of every member line run on the shared charge pump.
  Tick fault_extra = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const schemes::ServicePlan& plan = batch.per_line[i];
    note_stuck_remap(phys[i]);
    c_writes_.inc();
    c_batched_.inc();
    if (plan.silent) c_silent_.inc();
    c_flipped_units_.inc(plan.flipped_units);
    if (plan.enc.active) {
      c_enc_writes_.inc();
      c_enc_coded_units_.inc(plan.enc.coded_units);
      c_enc_tag_bits_.inc(plan.enc.tag_bits);
      if (trace::on<kEncodeCat>()) {
        trace::emit_instant(kEncodeCat, trace::Op::kEncodeLine,
                            encode_track(cfg_.track_base, bank), now,
                            plan.enc.coded_units, plan.enc.tag_bits);
      }
    }
    energy_.add_write(plan.programmed);
    if (plan.background.total() > 0) {
      energy_.add_write(plan.background);
      wear_.record(phys[i], plan.background);
    }
    if (plan.read_before_write) {
      energy_.add_read(store_.units_per_line() * pcm_.geometry.data_unit_bits);
    }
    wear_.record(phys[i], plan.programmed);
    fault_extra += apply_line_faults(phys[i], plan);
    a_write_units_.add(plan.write_units);
    if (plan.power_util > 0.0) a_power_util_.add(plan.power_util);
    note_row_activate(bank, phys[i]);

    if (cfg_.wear_leveling) {
      const u64 region =
          map_.line_index(reqs[i].addr) / cfg_.start_gap.region_lines;
      if (const auto move = leveler_for(region).on_write()) {
        apply_gap_move(region, *move);
      }
    }
  }
  end_plan_scope(bscale);
  const Tick batch_service = batch.latency + fault_extra;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    a_write_service_.add(to_ns(batch_service));
  }

  Tick start = std::max(now, banks_[bank].free_at());
  // Distinct subarrays touched by the batch, as a bank-local bitmap
  // (replaces the old std::find over a growing vector).
  const u32 spb = map_.subarrays_per_bank();
  const u32 sub_base = bank * spb;
  InlineVec<u64, 4> sub_mask;
  sub_mask.resize((spb + 63) / 64, 0);
  const std::span<u64> mask{sub_mask.data(), sub_mask.size()};
  for (const Addr p : phys) {
    const u32 local = eff_sub(p) - sub_base;
    if (!bitmap_test(mask, local)) {
      bitmap_set(mask, local);
      start = std::max(start, subarrays_[sub_base + local].free_at());
    }
  }
  banks_[bank].occupy(start, batch_service);
  u32 spread = 0;
  bitmap_for_each(mask, [&](u32 local) {
    subarrays_[sub_base + local].occupy(start, batch_service);
    ++spread;
  });
  ++inflight_;
  if (palp_on_) {
    // A full-budget batch owns the pump until it completes: partition
    // writes and capped reads both see loaded() for its duration.
    pumps_[bank].begin_exclusive();
    a_palp_batch_spread_.add(static_cast<double>(spread));
    if (trace::on<kPalpCat>()) {
      trace::emit_instant(kPalpCat, trace::Op::kPalpBatchSpread,
                          palp_track(cfg_.track_base, bank), start,
                          reqs.size(), spread);
      trace::emit_span(kPalpCat, trace::Op::kPalpWriteSpan,
                       palp_track(cfg_.track_base, bank), start,
                       batch_service, spread);
    }
  }
  if (trace::on<kCat>()) {
    trace::emit_span(kCat, trace::Op::kBatchService, bank_track(cfg_.track_base, bank), start,
                     batch_service, reqs.size());
  }
  const Tick done_in = start + batch_service - now;
  sim_.schedule_in(
      done_in,
      [this, bank, reqs = std::move(reqs)]() mutable {
        --inflight_;
        if (palp_on_) pumps_[bank].end_exclusive();
        for (auto& r : reqs) {
          r.complete_tick = sim_.now();
          const double lat_ns = to_ns(r.complete_tick - r.enqueue_tick);
          a_write_latency_.add(lat_ns);
          h_write_latency_.add(static_cast<u64>(lat_ns));
          if (on_write_) on_write_(r);
        }
        schedule_dispatch();
      },
      sim::Priority::kDeviceComplete);
}

void Controller::apply_gap_move(u64 region, const GapMove& move) {
  const u64 n = cfg_.start_gap.region_lines;
  const Addr src = (region * (n + 1) + move.from_physical) * map_.line_bytes();
  const Addr dst = (region * (n + 1) + move.to_physical) * map_.line_bytes();

  const pcm::LogicalLine content = store_.read_logical(src);
  pcm::LineBuf& dst_line = store_.line(dst);
  const double bscale = begin_plan_scope(sim_.now());
  const schemes::ServicePlan plan = scheme_.plan_write(dst_line, content);
  energy_.add_write(plan.programmed);
  wear_.record(dst, plan.programmed);
  const Tick gap_service = plan.latency + apply_line_faults(dst, plan);
  end_plan_scope(bscale);
  c_gap_moves_.inc();

  const u32 bank = eff_bank(dst);
  if (trace::on<kCat>()) {
    trace::emit_instant(kCat, trace::Op::kGapMove, bank_track(cfg_.track_base, bank),
                        sim_.now(), region, gap_service);
  }
  const u32 subarray = eff_sub(dst);
  note_row_activate(bank, dst);
  const Tick start = std::max({sim_.now(), banks_[bank].free_at(),
                               subarrays_[subarray].free_at()});
  banks_[bank].occupy(start, gap_service);
  subarrays_[subarray].occupy(start, gap_service);
  const Tick done_in = start + gap_service - sim_.now();
  sim_.schedule_in(done_in, [this] { schedule_dispatch(); },
                   sim::Priority::kDeviceComplete);
}

void Controller::complete_write(u32 bank, u64 epoch) {
  auto& active = active_write_[bank];
  if (!active.has_value() || active->epoch != epoch) return;

  MemoryRequest req = std::move(active->req);
  if (trace::on<kCat>()) {
    trace::emit_instant(kCat, trace::Op::kWriteComplete, bank_track(cfg_.track_base, bank),
                        sim_.now(), req.id, active->service);
  }
  active.reset();
  --inflight_;
  req.complete_tick = sim_.now();
  const double lat_ns = to_ns(req.complete_tick - req.enqueue_tick);
  a_write_latency_.add(lat_ns);
  h_write_latency_.add(static_cast<u64>(lat_ns));
  if (on_write_) on_write_(req);
  schedule_dispatch();
}

bool Controller::try_pause(u32 bank, u32 wanted_subarray) {
  auto& active = active_write_[bank];
  if (!active.has_value() || paused_write_[bank].has_value()) return false;
  if (active->subarray != wanted_subarray) return false;
  if (banks_[bank].free_at() != active->end) return false;
  if (subarrays_[active->subarray].free_at() != active->end) return false;

  const Tick now = sim_.now();
  const Tick elapsed = now - active->start;
  const Tick boundary =
      active->start +
      ceil_div(elapsed, cfg_.pause_quantum) * cfg_.pause_quantum;
  if (boundary >= active->end) return false;

  banks_[bank].preempt(boundary);
  subarrays_[active->subarray].preempt(boundary);
  if (trace::on<kCat>()) {
    trace::emit_instant(kCat, trace::Op::kWritePause, bank_track(cfg_.track_base, bank),
                        boundary, active->req.id, active->end - boundary);
  }
  PausedWrite paused;
  paused.req = std::move(active->req);
  paused.remaining = active->end - boundary;
  paused.subarray = active->subarray;
  paused_write_[bank] = std::move(paused);
  active.reset();
  ++bank_epoch_[bank];
  ++paused_count_;
  c_pauses_.inc();

  sim_.schedule_at(boundary, [this] { schedule_dispatch(); },
                   sim::Priority::kController);
  return true;
}

void Controller::resume_paused(u32 bank) {
  TW_ASSERT(paused_write_[bank].has_value());
  const Tick now = sim_.now();
  PausedWrite paused = std::move(*paused_write_[bank]);
  paused_write_[bank].reset();
  --paused_count_;

  banks_[bank].occupy(now, paused.remaining);
  subarrays_[paused.subarray].occupy(now, paused.remaining);
  if (trace::on<kCat>()) {
    trace::emit_instant(kCat, trace::Op::kWriteResume, bank_track(cfg_.track_base, bank), now,
                        paused.req.id, paused.remaining);
  }
  const u64 epoch = ++bank_epoch_[bank];
  ActiveWrite active;
  active.req = std::move(paused.req);
  active.start = now;
  active.end = now + paused.remaining;
  active.epoch = epoch;
  active.service = paused.remaining;
  active.subarray = paused.subarray;
  active_write_[bank] = std::move(active);
  sim_.schedule_in(
      paused.remaining,
      [this, bank, epoch] { complete_write(bank, epoch); },
      sim::Priority::kDeviceComplete);
}

void Controller::notify_space() {
  if (!on_space_ || space_scheduled_) return;
  space_scheduled_ = true;
  sim_.schedule_in(
      0,
      [this] {
        space_scheduled_ = false;
        if (on_space_) on_space_();
      },
      sim::Priority::kCpu);
}

}  // namespace tw::mem
