#pragma once
// DRAM front tier: a per-channel set-associative line cache with dirty
// tracking that sits between the MemorySystem XBar front-end and the PCM
// Controller (the PCMSimMemorySystem shape: DRAM controllers alongside
// the PCM controllers, absorbing hot lines before they reach the PCM
// write path).
//
// Timing is the classic tiered-latency DRAM model: each cached line maps
// to a (DRAM bank, row); a hit to the bank's open row costs t_row_hit,
// anything else costs t_row_miss and re-opens the row. Hits complete
// entirely inside the tier — they never consume PCM channel credits —
// while misses forward to PCM through a strict-FIFO pending queue
// (writebacks first, then the demand read, so a demand read never passes
// an older same-line writeback; controller read-forwarding serves it
// from the queued data if they do meet in the PCM queues).
//
// Two replacement policies (dram.policy):
//  * kLru — classic least-recently-used.
//  * kMac — MAC-style PCM-write-aware (arXiv:1606.03248): eviction
//    prefers clean lines (a clean victim costs PCM nothing), and when a
//    set is all-dirty the tier writes back a same-PCM-bank *group* of
//    dirty ways (up to dram.mac_group, victim included) in one burst, so
//    the writebacks arrive at the controller as a same-bank cluster the
//    BatchPacker / PALP machinery can pack jointly. Grouped ways other
//    than the victim stay resident and merely turn clean.
//
// Determinism: every tier mutation happens on the front simulation
// domain (CPU enqueue, front-sim completion events, credit-release
// messages), so ShardedEngine lockstep runs stay bit-identical at every
// thread x channel count without any tier-side synchronization.

#include <deque>
#include <string>
#include <vector>

#include "tw/common/types.hpp"
#include "tw/mem/address_map.hpp"
#include "tw/mem/interface.hpp"
#include "tw/mem/request.hpp"
#include "tw/sim/simulator.hpp"
#include "tw/stats/registry.hpp"

namespace tw::mem {

/// Replacement policy of the DRAM front tier.
enum class DramPolicy : u8 {
  kLru,  ///< classic least-recently-used
  kMac,  ///< PCM-write-aware: clean-first eviction + same-bank dirty groups
};

const char* dram_policy_name(DramPolicy p);

/// Configuration of the optional DRAM front tier. Disabled by default;
/// `enabled = false` keeps every MemorySystem code path bit-identical to
/// a build without the tier.
struct DramConfig {
  bool enabled = false;
  /// Total DRAM capacity across all channels (split evenly; the
  /// per-channel set count must come out a power of two).
  u64 capacity_bytes = u64{32} * 1024 * 1024;
  u32 ways = 8;  ///< set associativity
  DramPolicy policy = DramPolicy::kLru;
  Tick t_row_hit = ns(15);   ///< access hitting the bank's open row
  Tick t_row_miss = ns(40);  ///< activate + access on a closed/other row
  u32 row_lines = 64;        ///< cache lines per DRAM row (power of two)
  u32 banks = 8;             ///< DRAM banks per channel (power of two)
  /// Miss-path backpressure: pending PCM forwards (writebacks + demand
  /// reads) buffered per channel before enqueue() refuses.
  u32 pending_limit = 64;
  /// kMac only: max dirty ways (victim included) written back as one
  /// same-PCM-bank group when a set is all-dirty.
  u32 mac_group = 4;

  /// Empty when consistent with `g`; otherwise an actionable description
  /// of the first violated constraint.
  std::string error(const pcm::GeometryParams& g) const;
};

/// One channel's DRAM cache controller. Owned by MemorySystem; runs
/// entirely on the front simulation domain.
class DramTier {
 public:
  /// Core id marking tier-generated writebacks; their PCM write
  /// completions are swallowed by the tier instead of reaching the CPU.
  static constexpr u32 kWritebackCore = 0xFFFFFFFFu;

  /// Hands a miss-path request to the PCM side (consuming a channel
  /// credit or controller queue slot). On success the callee may move
  /// from `req`; on refusal (false) it must leave `req` intact so the
  /// tier can retry it on on_pcm_space().
  using ForwardFn = std::function<bool(MemoryRequest& req)>;

  DramTier(sim::Simulator& sim, const DramConfig& cfg, const AddressMap& map,
           u32 channel, stats::Registry& reg);

  void set_forward(ForwardFn fn) { forward_ = std::move(fn); }
  void set_read_callback(MemoryInterface::ReadCallback cb) {
    on_read_ = std::move(cb);
  }
  void set_write_callback(MemoryInterface::WriteCallback cb) {
    on_write_ = std::move(cb);
  }

  /// Front-side entry. Hits complete in DRAM latency; misses evict (a
  /// dirty victim queues a writeback), install the line, and forward
  /// demand reads to PCM. Returns false only when the miss path is
  /// backpressured (pending queue at dram.pending_limit).
  bool enqueue(MemoryRequest req);

  /// A demand read forwarded to PCM completed; deliver it to the CPU.
  void on_pcm_read_complete(const MemoryRequest& req);

  /// A PCM write completed. Tier writebacks (core == kWritebackCore) are
  /// swallowed and the CPU callback is not invoked; returns true in that
  /// case.
  bool absorbs_write_complete(const MemoryRequest& req) const {
    return req.core == kWritebackCore;
  }

  /// PCM-side space/credit became available: drain pending forwards.
  void on_pcm_space();

  /// Room for at least one more miss in the pending queue.
  bool has_room() const { return pending_.size() < cfg_.pending_limit; }

  /// No pending forwards and no in-flight DRAM-hit completions.
  bool idle() const { return pending_.empty() && outstanding_ == 0; }

  u32 sets() const { return sets_; }
  u32 ways() const { return cfg_.ways; }

 private:
  static constexpr u32 kNoPayload = 0xFFFFFFFFu;

  struct Way {
    Addr tag = 0;  ///< full line address (global; unique across sets)
    u64 lru = 0;   ///< last-touch ordinal (global monotonic clock)
    u32 payload = kNoPayload;  ///< dirty data slot in payloads_
    bool valid = false;
    bool dirty = false;
  };

  u32 set_of(Addr line) const;
  Tick access_latency(Addr line);
  u32 pick_victim(u32 set_base);
  /// Queue a writeback of `w`'s line and clear its dirty state.
  void write_back(Way& w);
  void complete_hit(MemoryRequest req, Tick latency);
  void drain_forwards();

  sim::Simulator& sim_;
  DramConfig cfg_;
  const AddressMap& map_;
  u32 channel_;
  u32 sets_ = 1;
  u64 clock_ = 0;  ///< LRU ordinal source
  std::vector<Way> ways_;  ///< sets_ x cfg_.ways, row-major by set

  /// Dirty payload pool (slotted; Way::payload indexes it). Kept out of
  /// Way because a LogicalLine is ~264 bytes and most resident lines are
  /// clean; the pool grows to the peak dirty-line count only.
  std::vector<pcm::LogicalLine> payloads_;
  std::vector<u32> free_payloads_;

  /// Strict-FIFO miss path to PCM (writebacks ahead of the demand read
  /// that evicted them).
  std::deque<MemoryRequest> pending_;

  /// Tiered-latency state: per-DRAM-bank open row.
  struct OpenRow {
    u64 row = 0;
    bool valid = false;
  };
  std::vector<OpenRow> open_row_;

  /// DRAM-hit completions in flight, staged by slot so the simulator
  /// callback captures one u32 instead of a ~300-byte MemoryRequest.
  std::vector<MemoryRequest> slot_pool_;
  std::vector<u32> free_slots_;
  u64 outstanding_ = 0;

  ForwardFn forward_;
  MemoryInterface::ReadCallback on_read_;
  MemoryInterface::WriteCallback on_write_;

  stats::Counter& c_hits_;
  stats::Counter& c_misses_;
  stats::Counter& c_writebacks_;
  stats::Counter& c_clean_evicts_;
  stats::Counter& c_group_cleans_;
};

}  // namespace tw::mem
