#include "tw/mem/data_store.hpp"

namespace tw::mem {

pcm::LineBuf DataStore::materialize(Addr line_addr) const {
  // Deterministic per-line content: hash (seed, addr) into a short
  // SplitMix64 stream. Tags start clear (factory state).
  SplitMix64 sm(seed_ ^ (line_addr * 0x9E3779B97F4A7C15ull) ^ line_addr);
  pcm::LineBuf buf(units_);
  if (ones_bias_ == 0.5) {
    for (u32 i = 0; i < units_; ++i) buf.set_cell(i, sm.next());
    return buf;
  }
  // Biased content: each cell is '1' with probability ones_bias_.
  const u64 threshold = static_cast<u64>(
      ones_bias_ * 18446744073709551615.0);  // bias * (2^64 - 1)
  for (u32 i = 0; i < units_; ++i) {
    u64 w = 0;
    for (u32 b = 0; b < 64; ++b) {
      if (sm.next() <= threshold) w |= (u64{1} << b);
    }
    buf.set_cell(i, w);
  }
  return buf;
}

pcm::LineBuf& DataStore::line(Addr line_addr) {
  const u32 idx = index_.find(line_addr);
  if (idx != FlatIndexMap::kNoIndex) {
    return chunks_[idx >> kChunkShift][idx & kChunkMask];
  }
  if ((arena_size_ >> kChunkShift) == chunks_.size()) {
    chunks_.push_back(std::make_unique<pcm::LineBuf[]>(kChunkLines));
  }
  const u32 slot = arena_size_++;
  pcm::LineBuf& buf = chunks_[slot >> kChunkShift][slot & kChunkMask];
  buf = materialize(line_addr);
  index_.insert(line_addr, slot);
  return buf;
}

}  // namespace tw::mem
