#pragma once
// Memory request type exchanged between the CPU model and the controller.

#include "tw/common/types.hpp"
#include "tw/pcm/line.hpp"

namespace tw::mem {

/// Request kind.
enum class ReqType : u8 { kRead, kWrite };

/// One cache-line request to PCM main memory.
struct MemoryRequest {
  u64 id = 0;          ///< unique per controller, assigned at enqueue
  Addr addr = 0;       ///< line-aligned physical address
  ReqType type = ReqType::kRead;
  u32 core = 0;        ///< issuing core (for per-core stats)
  Tick enqueue_tick = 0;   ///< when the controller accepted it
  Tick start_tick = 0;     ///< when service began
  Tick complete_tick = 0;  ///< when service finished
  pcm::LogicalLine data;   ///< payload for writes (units() == 0 for reads)

  bool is_write() const { return type == ReqType::kWrite; }
};

}  // namespace tw::mem
