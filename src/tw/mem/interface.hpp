#pragma once
// Abstract front-end of the memory subsystem. CPU cores talk to a
// MemoryInterface and never care whether it is a single Controller
// (channels=1, the paper's organization) or a MemorySystem routing across
// N channel controllers behind an XBar. Completion/space callbacks follow
// the Controller contract: set once at wiring time, invoked on the
// front-side simulation domain.

#include <functional>

#include "tw/common/types.hpp"
#include "tw/mem/data_store.hpp"
#include "tw/mem/request.hpp"

namespace tw::mem {

class MemoryInterface {
 public:
  using ReadCallback = std::function<void(const MemoryRequest&)>;
  using WriteCallback = std::function<void(const MemoryRequest&)>;
  using SpaceCallback = std::function<void()>;

  virtual ~MemoryInterface() = default;

  /// Try to accept a request. Returns false when the target queue is full
  /// (the caller should wait for the space callback and retry).
  virtual bool enqueue(MemoryRequest req) = 0;

  /// Invoked when a read's data returns.
  virtual void set_read_callback(ReadCallback cb) = 0;
  /// Invoked when a write completes service (informational).
  virtual void set_write_callback(WriteCallback cb) = 0;
  /// Invoked whenever queue space frees up.
  virtual void set_space_callback(SpaceCallback cb) = 0;

  /// True when all queues are empty and all banks idle (quiesced).
  virtual bool idle() const = 0;

  /// Content store backing the line that holds `addr` (per-channel in a
  /// multi-channel system; stores are sparse and keyed by global line
  /// address, so callers use global addresses untranslated).
  virtual DataStore& store_for(Addr addr) = 0;
};

}  // namespace tw::mem
