#pragma once
// Three-level cache hierarchy per Table II:
//   L1: 32 KB I + 32 KB D, 2-cycle; L2: 2 MB 8-way, 20-cycle;
//   L3: 32 MB 16-way DRAM cache, 50-cycle; 64 B lines throughout.
//
// Functional inclusive write-back model: an access walks down the levels;
// misses allocate on the way back up; dirty evictions cascade toward
// memory. The hierarchy returns what the CPU model needs: the hit latency
// and the memory traffic (demand read + write-backs) the access caused.

#include <vector>

#include "tw/cache/cache.hpp"

namespace tw::cache {

/// Table II hierarchy geometry.
struct HierarchyConfig {
  CacheConfig l1d{32 * 1024, 8, 64, 2, "L1D"};
  CacheConfig l1i{32 * 1024, 8, 64, 2, "L1I"};
  CacheConfig l2{2 * 1024 * 1024, 8, 64, 20, "L2"};
  CacheConfig l3{32ull * 1024 * 1024, 16, 64, 50, "L3"};
};

/// What one data access did.
struct HierarchyResult {
  u32 latency_cycles = 0;        ///< lookup latency down to the hit level
  bool memory_read = false;      ///< missed everywhere: demand line fetch
  std::vector<Addr> memory_writebacks;  ///< dirty lines pushed to memory
  u32 hit_level = 0;             ///< 1..3, or 0 when memory_read
};

/// One core-private L1 + shared L2/L3 stack (a private stack per core is
/// also fine for the trace experiments; sharing is configured by the
/// owner wiring the same Hierarchy into several cores).
class Hierarchy {
 public:
  explicit Hierarchy(const HierarchyConfig& cfg);

  /// Data access (loads and stores).
  HierarchyResult access(Addr addr, bool is_write);

  const Cache& l1d() const { return l1d_; }
  const Cache& l2() const { return l2_; }
  const Cache& l3() const { return l3_; }

 private:
  /// The level walk itself; access() wraps it with trace emission (a
  /// writeback cascade can end on any of its early-return paths).
  HierarchyResult walk(Addr addr, bool is_write);

  Cache l1d_;
  Cache l2_;
  Cache l3_;
};

}  // namespace tw::cache
