#pragma once
// Set-associative write-back write-allocate cache with true-LRU
// replacement. Functional + timing-parameter model: lookups return hit/miss
// and any dirty victim; the caller (hierarchy / CPU model) applies the
// latencies.

#include <optional>
#include <string>
#include <vector>

#include "tw/common/assert.hpp"
#include "tw/common/types.hpp"

namespace tw::cache {

/// Geometry and access latency of one cache level.
struct CacheConfig {
  u64 size_bytes = 32 * 1024;
  u32 ways = 4;
  u32 line_bytes = 64;
  u32 latency_cycles = 2;
  std::string name = "cache";

  u64 sets() const { return size_bytes / (static_cast<u64>(ways) * line_bytes); }
  bool valid() const {
    return size_bytes > 0 && ways > 0 && line_bytes > 0 &&
           is_pow2(line_bytes) && size_bytes % (u64{ways} * line_bytes) == 0 &&
           is_pow2(sets());
  }
};

/// Outcome of one cache access.
struct AccessResult {
  bool hit = false;
  /// Dirty line evicted by the fill (write-back to the next level).
  std::optional<Addr> writeback;
};

/// One cache level.
class Cache {
 public:
  explicit Cache(CacheConfig cfg);

  /// Look up and (on miss) allocate `addr`. `is_write` marks the line
  /// dirty. Returns hit/miss and any dirty victim's line address.
  AccessResult access(Addr addr, bool is_write);

  /// Probe without side effects.
  bool contains(Addr addr) const;

  /// Invalidate a line if present; returns its address when it was dirty.
  std::optional<Addr> invalidate(Addr addr);

  const CacheConfig& config() const { return cfg_; }
  u64 hits() const { return hits_; }
  u64 misses() const { return misses_; }
  u64 writebacks() const { return writebacks_; }
  double hit_rate() const {
    const u64 total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) /
                                  static_cast<double>(total);
  }

 private:
  struct Way {
    u64 tag = 0;
    bool valid = false;
    bool dirty = false;
    u64 lru = 0;  ///< higher = more recently used
  };

  u64 set_of(Addr addr) const;
  u64 tag_of(Addr addr) const;
  Addr rebuild(u64 tag, u64 set) const;

  CacheConfig cfg_;
  u64 line_shift_;
  u64 set_mask_;
  std::vector<Way> ways_;  ///< sets x ways, row-major
  u64 lru_clock_ = 0;
  u64 hits_ = 0;
  u64 misses_ = 0;
  u64 writebacks_ = 0;
};

}  // namespace tw::cache
