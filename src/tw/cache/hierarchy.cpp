#include "tw/cache/hierarchy.hpp"

#include "tw/trace/emit.hpp"

namespace tw::cache {

Hierarchy::Hierarchy(const HierarchyConfig& cfg)
    : l1d_(cfg.l1d), l2_(cfg.l2), l3_(cfg.l3) {}

HierarchyResult Hierarchy::access(Addr addr, bool is_write) {
  HierarchyResult r = walk(addr, is_write);
  if (trace::on<trace::Category::kCache>()) {
    // The CPU core installs a (time base, cache track) context before
    // pulling from the workload source; the hierarchy itself is untimed.
    const Tick base = trace::g_tls.base;
    const u32 track = trace::g_tls.track;
    for (const Addr wb : r.memory_writebacks) {
      trace::emit_instant(trace::Category::kCache, trace::Op::kCacheWriteback,
                          track, base, wb);
    }
    if (r.memory_read) {
      trace::emit_instant(trace::Category::kCache, trace::Op::kCacheMiss,
                          track, base, addr, r.hit_level);
    }
  }
  return r;
}

HierarchyResult Hierarchy::walk(Addr addr, bool is_write) {
  HierarchyResult r;

  // L1.
  r.latency_cycles += l1d_.config().latency_cycles;
  const AccessResult a1 = l1d_.access(addr, is_write);
  if (a1.hit) {
    r.hit_level = 1;
    return r;
  }

  // L1 victim write-back goes to L2 (allocate-on-writeback).
  if (a1.writeback) {
    const AccessResult wb = l2_.access(*a1.writeback, /*is_write=*/true);
    if (wb.writeback) {
      const AccessResult wb3 = l3_.access(*wb.writeback, true);
      if (wb3.writeback) r.memory_writebacks.push_back(*wb3.writeback);
    }
  }

  // L2. The demand fill into L1 was already done by the miss-allocate
  // above; the line is clean in L1 unless the access was a store.
  r.latency_cycles += l2_.config().latency_cycles;
  const AccessResult a2 = l2_.access(addr, /*is_write=*/false);
  if (a2.hit) {
    r.hit_level = 2;
    return r;
  }
  if (a2.writeback) {
    const AccessResult wb3 = l3_.access(*a2.writeback, true);
    if (wb3.writeback) r.memory_writebacks.push_back(*wb3.writeback);
  }

  // L3.
  r.latency_cycles += l3_.config().latency_cycles;
  const AccessResult a3 = l3_.access(addr, /*is_write=*/false);
  if (a3.hit) {
    r.hit_level = 3;
    return r;
  }
  if (a3.writeback) r.memory_writebacks.push_back(*a3.writeback);

  // Missed everywhere: demand read from PCM.
  r.memory_read = true;
  r.hit_level = 0;
  return r;
}

}  // namespace tw::cache
