#include "tw/cache/cache.hpp"

#include <string>

namespace tw::cache {

Cache::Cache(CacheConfig cfg)
    : cfg_(std::move(cfg)),
      line_shift_(log2_pow2(cfg_.line_bytes)),
      set_mask_(cfg_.sets() - 1),
      ways_(cfg_.sets() * cfg_.ways) {
  TW_EXPECTS(cfg_.valid());
}

u64 Cache::set_of(Addr addr) const {
  return (addr >> line_shift_) & set_mask_;
}

u64 Cache::tag_of(Addr addr) const {
  return (addr >> line_shift_) >> log2_pow2(cfg_.sets());
}

Addr Cache::rebuild(u64 tag, u64 set) const {
  return ((tag << log2_pow2(cfg_.sets())) | set) << line_shift_;
}

AccessResult Cache::access(Addr addr, bool is_write) {
  const u64 set = set_of(addr);
  const u64 tag = tag_of(addr);
  Way* base = &ways_[set * cfg_.ways];

  // Hit path.
  for (u32 w = 0; w < cfg_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = ++lru_clock_;
      way.dirty = way.dirty || is_write;
      ++hits_;
      return AccessResult{true, std::nullopt};
    }
  }

  // Miss: allocate into an invalid way if one exists, else evict true-LRU.
  ++misses_;
  Way* victim = nullptr;
  for (u32 w = 0; w < cfg_.ways; ++w) {
    Way& way = base[w];
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (victim == nullptr || way.lru < victim->lru) victim = &way;
  }

  AccessResult result;
  if (victim->valid && victim->dirty) {
    result.writeback = rebuild(victim->tag, set);
    ++writebacks_;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = is_write;
  victim->lru = ++lru_clock_;
  return result;
}

bool Cache::contains(Addr addr) const {
  const u64 set = set_of(addr);
  const u64 tag = tag_of(addr);
  const Way* base = &ways_[set * cfg_.ways];
  for (u32 w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

std::optional<Addr> Cache::invalidate(Addr addr) {
  const u64 set = set_of(addr);
  const u64 tag = tag_of(addr);
  Way* base = &ways_[set * cfg_.ways];
  for (u32 w = 0; w < cfg_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.valid = false;
      if (way.dirty) {
        way.dirty = false;
        return rebuild(tag, set);
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace tw::cache
