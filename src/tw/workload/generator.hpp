#pragma once
// Synthetic trace generator: turns a WorkloadProfile into per-core streams
// of memory-level requests with controlled data-content statistics.
//
//  * Inter-request gaps are geometric with mean 1000/(RPKI+WPKI)
//    instructions; each request is a write with probability WPKI/(R+W).
//  * Addresses come from a per-core private region plus a cross-core
//    shared region (Table III sharing level), uniform within each.
//  * Write payloads are *mutations of current memory content*: per data
//    unit, Poisson(mean_sets) zero-bits are raised and
//    Poisson(mean_resets) one-bits are cleared, so the bit-transition
//    statistics the schemes measure match Figure 3 by construction.

#include "tw/common/rng.hpp"
#include "tw/common/types.hpp"
#include "tw/mem/data_store.hpp"
#include "tw/pcm/line.hpp"
#include "tw/pcm/params.hpp"
#include "tw/workload/profiles.hpp"
#include "tw/workload/source.hpp"

#include <vector>

namespace tw::workload {

/// Deterministic per-(workload, seed) trace source.
class TraceGenerator : public RequestSource {
 public:
  TraceGenerator(const WorkloadProfile& profile,
                 const pcm::GeometryParams& geometry, u32 cores, u64 seed);

  /// Next request for a core. Streams are independent across cores.
  TraceOp next(u32 core) override;

  /// Synthesize the write payload for `addr` against the current content
  /// of `store` (does not modify the store).
  pcm::LogicalLine make_write_data(Addr addr, mem::DataStore& store,
                                   u32 core) override;

  const WorkloadProfile& profile() const { return profile_; }

  /// The ones-bias the backing DataStore should be initialized with.
  double initial_ones_fraction() const {
    return profile_.initial_ones_fraction;
  }

 private:
  Addr pick_address(u32 core, Rng& rng);
  u64 mutate_unit(u64 logical, Rng& rng);
  u64 modulate_gap(u64 gap, u32 core, Rng& rng);
  u64 compressible_unit(Rng& rng);
  u64 zipf_byte_unit(Rng& rng);
  u64 adversarial_unit(u64 logical, Rng& rng);

  WorkloadProfile profile_;
  u32 line_bytes_;
  u32 units_per_line_;
  u32 unit_bits_;
  double shared_frac_;
  std::vector<Rng> core_rng_;
  std::vector<bool> in_burst_;  ///< per-core ON/OFF modulation state
};

}  // namespace tw::workload
