#include "tw/workload/replay.hpp"

#include "tw/common/assert.hpp"

namespace tw::workload {

TraceReplaySource::TraceReplaySource(std::vector<TraceRecord> records,
                                     u32 cores,
                                     const WorkloadProfile& content_profile,
                                     const pcm::GeometryParams& geometry,
                                     u64 seed)
    : per_core_(cores),
      cursor_(cores, 0),
      wraps_(cores, 0),
      content_(content_profile, geometry, cores, seed) {
  TW_EXPECTS(cores >= 1);
  for (auto& r : records) {
    TW_EXPECTS(r.core < cores);
    per_core_[r.core].push_back(r);
  }
  for (u32 c = 0; c < cores; ++c) {
    if (per_core_[c].empty()) {
      TW_FAIL("trace has no records for a core");
    }
  }
}

TraceOp TraceReplaySource::next(u32 core) {
  TW_EXPECTS(core < per_core_.size());
  auto& stream = per_core_[core];
  if (cursor_[core] >= stream.size()) {
    cursor_[core] = 0;
    ++wraps_[core];
  }
  const TraceRecord& r = stream[cursor_[core]++];
  TraceOp op;
  op.gap = r.gap;
  op.is_write = r.is_write;
  op.addr = r.addr;
  return op;
}

pcm::LogicalLine TraceReplaySource::make_write_data(Addr addr,
                                                    mem::DataStore& store,
                                                    u32 core) {
  return content_.make_write_data(addr, store, core);
}

}  // namespace tw::workload
