#pragma once
// Binary trace record/replay: capture a generated request stream to disk
// so experiments can be replayed exactly (or traces inspected offline).
//
// Format (little-endian):
//   magic "TWTRACE1" (8 bytes)
//   u32 record_count, u32 cores
//   records: { u64 gap, u64 addr, u32 core, u8 is_write, u8[3] pad }

#include <string>
#include <vector>

#include "tw/common/types.hpp"
#include "tw/workload/generator.hpp"

namespace tw::workload {

/// One recorded request with its issuing core.
struct TraceRecord {
  u64 gap = 0;
  Addr addr = 0;
  u32 core = 0;
  bool is_write = false;
};

/// Write records to a file. Throws std::runtime_error on I/O failure.
void save_trace(const std::string& path,
                const std::vector<TraceRecord>& records, u32 cores);

/// Read records back. Throws std::runtime_error on I/O or format errors.
std::vector<TraceRecord> load_trace(const std::string& path, u32* cores);

/// Capture `count` requests per core from a generator.
std::vector<TraceRecord> capture(TraceGenerator& gen, u32 cores, u64 count);

}  // namespace tw::workload
