#include "tw/workload/profiles.hpp"

#include <algorithm>
#include <string>

#include "tw/common/assert.hpp"

namespace tw::workload {
namespace {

// A full-line rewrite changes ~29 bits/unit after inversion, split about
// evenly between SETs and RESETs (SETs run slightly hotter because the
// first-touch content of SET-dominant workloads is zero-rich); the
// small-write Poisson means are
// back-solved so the mixture hits the Figure 3 targets:
//   fig3 = p * kBigMean + (1-p) * mean_small.
constexpr double kBigMeanResets = 12.6;
constexpr double kBigMeanSets = 15.6;

WorkloadProfile make(std::string name, std::string domain, double rpki,
                     double wpki, double fig3_r, double fig3_s,
                     double line_rewrite, Level sharing, Level exchange) {
  WorkloadProfile p;
  p.name = std::move(name);
  p.domain = std::move(domain);
  p.rpki = rpki;
  p.wpki = wpki;
  p.fig3_resets = fig3_r;
  p.fig3_sets = fig3_s;
  p.line_rewrite_prob = line_rewrite;
  p.mean_resets = std::max(
      0.05, (fig3_r - line_rewrite * kBigMeanResets) / (1.0 - line_rewrite));
  p.mean_sets = std::max(
      0.05, (fig3_s - line_rewrite * kBigMeanSets) / (1.0 - line_rewrite));
  p.sharing = sharing;
  p.exchange = exchange;
  // SET-dominant small writes consume zero bits; start those workloads'
  // memory zero-rich so short reuse chains do not starve of SET targets.
  const double drift = p.mean_sets - p.mean_resets;
  p.initial_ones_fraction =
      drift > 1.0 ? std::max(0.30, 0.5 - drift / 48.0) : 0.5;
  return p;
}

}  // namespace

const std::vector<WorkloadProfile>& parsec_profiles() {
  // RPKI/WPKI straight from Table III. Fig. 3 per-unit RESET/SET bars are
  // estimated under the paper's stated constraints (avg 2.9 + 6.7,
  // blackscholes ~2, vips ~19, vips/ferret near fifty-fifty). The
  // line-rewrite probabilities encode each workload's fraction of
  // fresh-content writes (high for streaming media/storage, low for
  // pointer-chasing and financial kernels).
  static const std::vector<WorkloadProfile> kProfiles = {
      make("blackscholes", "Financial Analysis", 0.04, 0.02, 0.5, 1.5,
           0.01, Level::kLow, Level::kLow),
      make("bodytrack", "Computer Vision", 0.72, 0.24, 2.0, 7.0, 0.10,
           Level::kHigh, Level::kMedium),
      make("canneal", "Engineering", 2.76, 0.19, 1.0, 4.5, 0.05,
           Level::kHigh, Level::kHigh),
      make("dedup", "Enterprise Storage", 0.82, 0.49, 3.5, 12.0, 0.22,
           Level::kHigh, Level::kHigh),
      make("ferret", "Similarity Search", 1.67, 0.95, 6.0, 7.0, 0.42,
           Level::kHigh, Level::kHigh),
      make("freqmine", "Data Mining", 0.62, 0.25, 1.8, 6.0, 0.10,
           Level::kHigh, Level::kMedium),
      make("swaptions", "Financial Analysis", 0.04, 0.02, 0.7, 2.8, 0.02,
           Level::kLow, Level::kLow),
      make("vips", "Media Processing", 2.56, 1.56, 8.8, 10.2, 0.60,
           Level::kLow, Level::kMedium),
  };
  return kProfiles;
}

const WorkloadProfile& profile_by_name(std::string_view name) {
  for (const auto& p : parsec_profiles()) {
    if (p.name == name) return p;
  }
  TW_FAIL(("unknown workload: " + std::string(name)).c_str());
}

const char* content_class_name(ContentClass c) {
  switch (c) {
    case ContentClass::kMutate:
      return "mutate";
    case ContentClass::kCompressible:
      return "compressible";
    case ContentClass::kZipfByte:
      return "zipf";
    case ContentClass::kAdversarial:
      return "adversarial";
  }
  TW_FAIL("unknown content class");
}

double shared_fraction(Level sharing) {
  switch (sharing) {
    case Level::kLow:
      return 0.05;
    case Level::kMedium:
      return 0.25;
    case Level::kHigh:
      return 0.50;
  }
  return 0.25;
}

}  // namespace tw::workload
