#include "tw/workload/generator.hpp"

#include <algorithm>
#include <array>

#include "tw/common/assert.hpp"
#include "tw/common/bits.hpp"

namespace tw::workload {
namespace {

// Address-space layout: each core owns a private region; one shared
// region is common to all cores. Regions are spaced far apart so they
// never alias (the store is sparse; capacity is not enforced here).
constexpr Addr kPrivateBase = 0x0000'0001'0000'0000ull;
constexpr Addr kPrivateStride = 0x0000'0001'0000'0000ull;
constexpr Addr kSharedBase = 0x0000'1000'0000'0000ull;

}  // namespace

TraceGenerator::TraceGenerator(const WorkloadProfile& profile,
                               const pcm::GeometryParams& geometry,
                               u32 cores, u64 seed)
    : profile_(profile),
      line_bytes_(geometry.cache_line_bytes),
      units_per_line_(geometry.units_per_line()),
      unit_bits_(geometry.data_unit_bits),
      shared_frac_(shared_fraction(profile.sharing)),
      in_burst_(cores, false) {
  TW_EXPECTS(cores >= 1);
  TW_EXPECTS(profile.burstiness >= 0.0 && profile.burstiness <= 1.0);
  TW_EXPECTS(profile.mem_ops_per_kilo() > 0.0);
  SplitMix64 sm(seed ^ 0xC0FFEE1234ull);
  core_rng_.reserve(cores);
  for (u32 c = 0; c < cores; ++c) core_rng_.emplace_back(sm.next());
}

TraceOp TraceGenerator::next(u32 core) {
  TW_EXPECTS(core < core_rng_.size());
  Rng& rng = core_rng_[core];

  TraceOp op;
  const double mean_gap = 1000.0 / profile_.mem_ops_per_kilo();
  op.gap = modulate_gap(rng.geometric(std::max(1.0, mean_gap)), core, rng);
  op.is_write = rng.chance(profile_.write_fraction());
  op.addr = pick_address(core, rng);
  return op;
}

u64 TraceGenerator::modulate_gap(u64 gap, u32 core, Rng& rng) {
  const double b = profile_.burstiness;
  if (b <= 0.0) return gap;
  // Two-state ON/OFF modulation: ON periods run 8x the rate; the duty
  // cycle is b/4 and OFF gaps stretch so the long-run average rate (and
  // so RPKI/WPKI) is preserved:
  //   duty/8 + (1-duty)*stretch = 1.
  constexpr double kSpeedup = 8.0;
  constexpr double kBurstLength = 32.0;  // mean ops per ON period
  const double duty = 0.25 * b;
  const double p_exit = 1.0 / kBurstLength;
  const double p_enter = p_exit * duty / (1.0 - duty);
  const bool burst = in_burst_[core];
  if (burst) {
    if (rng.chance(p_exit)) in_burst_[core] = false;
  } else {
    if (rng.chance(p_enter)) in_burst_[core] = true;
  }
  if (burst) {
    const u64 g = static_cast<u64>(static_cast<double>(gap) / kSpeedup);
    return g == 0 ? 1 : g;
  }
  const double stretch = (1.0 - duty / kSpeedup) / (1.0 - duty);
  return static_cast<u64>(static_cast<double>(gap) * stretch);
}

Addr TraceGenerator::pick_address(u32 core, Rng& rng) {
  const u64 line = rng.below(profile_.working_set_lines);
  Addr base;
  if (rng.chance(shared_frac_)) {
    base = kSharedBase;
  } else {
    base = kPrivateBase + core * kPrivateStride;
  }
  return base + line * line_bytes_;
}

u64 TraceGenerator::mutate_unit(u64 logical, Rng& rng) {
  const u64 mask = low_mask(unit_bits_);
  logical &= mask;

  // Collect zero and one bit positions.
  std::array<u8, 64> zeros{};
  std::array<u8, 64> ones{};
  u32 nz = 0, no = 0;
  for (u32 b = 0; b < unit_bits_; ++b) {
    if (get_bit(logical, b)) {
      ones[no++] = static_cast<u8>(b);
    } else {
      zeros[nz++] = static_cast<u8>(b);
    }
  }

  u32 n_set = static_cast<u32>(rng.poisson(profile_.mean_sets));
  u32 n_reset = static_cast<u32>(rng.poisson(profile_.mean_resets));
  n_set = std::min(n_set, nz);
  n_reset = std::min(n_reset, no);

  // Partial Fisher-Yates: choose n_set zero positions to raise.
  for (u32 i = 0; i < n_set; ++i) {
    const u32 j = i + static_cast<u32>(rng.below(nz - i));
    std::swap(zeros[i], zeros[j]);
    logical = with_bit(logical, zeros[i], true);
  }
  for (u32 i = 0; i < n_reset; ++i) {
    const u32 j = i + static_cast<u32>(rng.below(no - i));
    std::swap(ones[i], ones[j]);
    logical = with_bit(logical, ones[i], false);
  }
  return logical;
}

u64 TraceGenerator::compressible_unit(Rng& rng) {
  // Narrow value: a random payload in the low half, sign-extended into a
  // constant high half. Exactly what word-level compressors (and the
  // coset encoder) are built to exploit.
  const u32 half = unit_bits_ / 2;
  const u64 payload = rng.next() & low_mask(half);
  const u64 high = low_mask(unit_bits_) ^ low_mask(half);
  return rng.chance(0.5) ? (payload | high) : payload;
}

u64 TraceGenerator::zipf_byte_unit(Rng& rng) {
  // Bytes drawn from a skewed 256-symbol alphabet: u^3 concentrates mass
  // on small byte values (text/pointer-like content) without a costly
  // true-Zipf sampler.
  u64 w = 0;
  const u32 bytes = (unit_bits_ + 7) / 8;
  for (u32 b = 0; b < bytes; ++b) {
    const double u = rng.uniform();
    const u64 byte = static_cast<u64>(255.0 * u * u * u);
    w |= byte << (8 * b);
  }
  return w & low_mask(unit_bits_);
}

u64 TraceGenerator::adversarial_unit(u64 logical, Rng& rng) {
  // Anti-code: flip exactly half the bits of the stored word. Hamming
  // distance bits/2 is the worst case for inversion coding (flip saves
  // nothing) and defeats narrow-value compression on average.
  const u32 n = unit_bits_ / 2;
  std::array<u8, 64> pos{};
  for (u32 b = 0; b < unit_bits_; ++b) pos[b] = static_cast<u8>(b);
  u64 w = logical & low_mask(unit_bits_);
  for (u32 i = 0; i < n; ++i) {
    const u32 j = i + static_cast<u32>(rng.below(unit_bits_ - i));
    std::swap(pos[i], pos[j]);
    w ^= u64{1} << pos[i];
  }
  return w;
}

pcm::LogicalLine TraceGenerator::make_write_data(Addr addr,
                                                 mem::DataStore& store,
                                                 u32 core) {
  TW_EXPECTS(core < core_rng_.size());
  Rng& rng = core_rng_[core];
  pcm::LogicalLine next(units_per_line_);

  switch (profile_.content) {
    case ContentClass::kCompressible:
      for (u32 u = 0; u < units_per_line_; ++u) {
        next.set_word(u, compressible_unit(rng));
      }
      return next;
    case ContentClass::kZipfByte:
      for (u32 u = 0; u < units_per_line_; ++u) {
        next.set_word(u, zipf_byte_unit(rng));
      }
      return next;
    case ContentClass::kAdversarial: {
      pcm::LogicalLine current = store.read_logical(addr);
      for (u32 u = 0; u < units_per_line_; ++u) {
        next.set_word(u, adversarial_unit(current.word(u), rng));
      }
      return next;
    }
    case ContentClass::kMutate:
      break;  // the calibrated default below
  }

  if (rng.chance(profile_.line_rewrite_prob)) {
    // Full-line rewrite: fresh content, ~half the cells change. This is
    // the heavy tail of real write traces (decoded frames, storage
    // streams) and what exercises the Flip-N-Write inversion path.
    const u64 mask = low_mask(unit_bits_);
    for (u32 u = 0; u < units_per_line_; ++u) {
      next.set_word(u, rng.next() & mask);
    }
    return next;
  }

  pcm::LogicalLine current = store.read_logical(addr);
  for (u32 u = 0; u < units_per_line_; ++u) {
    next.set_word(u, mutate_unit(current.word(u), rng));
  }
  return next;
}

}  // namespace tw::workload
