#pragma once
// CacheFilteredSource: drives CPU-level accesses through a per-core
// three-level cache hierarchy (Table II) and emits only the resulting
// memory traffic — demand misses plus dirty write-backs. This is the
// full-pipeline mode: Table III profiles describe memory-level rates, so
// this source takes a *CPU-level* profile (higher access rates) and lets
// the caches produce the memory-level stream organically.

#include <deque>
#include <memory>
#include <vector>

#include "tw/cache/hierarchy.hpp"
#include "tw/workload/generator.hpp"

namespace tw::workload {

/// Wraps a raw CPU-level generator with private cache stacks.
class CacheFilteredSource : public RequestSource {
 public:
  /// `cpu_profile` describes accesses *before* the caches; cache hit
  /// latency is folded into the emitted gap as equivalent instructions
  /// via `ipc_per_cycle` (the core model's peak IPC).
  CacheFilteredSource(const WorkloadProfile& cpu_profile,
                      const pcm::GeometryParams& geometry,
                      const cache::HierarchyConfig& hierarchy, u32 cores,
                      u64 seed, double ipc_per_cycle = 2.0);

  TraceOp next(u32 core) override;

  pcm::LogicalLine make_write_data(Addr addr, mem::DataStore& store,
                                   u32 core) override;

  /// Cache statistics for reporting.
  const cache::Hierarchy& hierarchy(u32 core) const {
    return *stacks_[core];
  }

  /// Memory-level requests emitted per kilo CPU-level instructions so far
  /// (the effective post-cache RPKI+WPKI).
  double effective_mem_per_kilo(u32 core) const;

 private:
  TraceGenerator raw_;
  std::vector<std::unique_ptr<cache::Hierarchy>> stacks_;
  std::vector<std::deque<TraceOp>> pending_;  ///< write-backs awaiting emit
  std::vector<u64> cpu_instructions_;
  std::vector<u64> mem_requests_;
  double ipc_;
};

}  // namespace tw::workload
