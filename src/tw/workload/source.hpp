#pragma once
// RequestSource: the interface between CPU cores and whatever produces
// their memory-level requests — the raw trace generator (Table III rates
// are already post-L3) or the cache-filtered source that runs CPU-level
// accesses through the tw::cache hierarchy first.

#include "tw/common/types.hpp"
#include "tw/mem/data_store.hpp"
#include "tw/pcm/line.hpp"

namespace tw::workload {

/// One generated request (declared here; TraceGenerator re-exports it).
struct TraceOp {
  u64 gap = 0;        ///< instructions executed before this request
  bool is_write = false;
  Addr addr = 0;      ///< line-aligned
};

/// Abstract per-core stream of memory requests.
class RequestSource {
 public:
  virtual ~RequestSource() = default;

  /// Next memory-level request for `core`.
  virtual TraceOp next(u32 core) = 0;

  /// Synthesize the write payload for `addr` against current content.
  virtual pcm::LogicalLine make_write_data(Addr addr, mem::DataStore& store,
                                           u32 core) = 0;
};

}  // namespace tw::workload
