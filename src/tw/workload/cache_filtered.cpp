#include "tw/workload/cache_filtered.hpp"

#include "tw/common/assert.hpp"

namespace tw::workload {

CacheFilteredSource::CacheFilteredSource(
    const WorkloadProfile& cpu_profile, const pcm::GeometryParams& geometry,
    const cache::HierarchyConfig& hierarchy, u32 cores, u64 seed,
    double ipc_per_cycle)
    : raw_(cpu_profile, geometry, cores, seed),
      pending_(cores),
      cpu_instructions_(cores, 0),
      mem_requests_(cores, 0),
      ipc_(ipc_per_cycle) {
  TW_EXPECTS(cores >= 1);
  TW_EXPECTS(ipc_per_cycle > 0.0);
  stacks_.reserve(cores);
  for (u32 c = 0; c < cores; ++c) {
    stacks_.push_back(std::make_unique<cache::Hierarchy>(hierarchy));
  }
}

TraceOp CacheFilteredSource::next(u32 core) {
  TW_EXPECTS(core < stacks_.size());

  // Drain queued write-backs first (they piggyback with zero gap).
  if (!pending_[core].empty()) {
    const TraceOp op = pending_[core].front();
    pending_[core].pop_front();
    ++mem_requests_[core];
    return op;
  }

  u64 accumulated_gap = 0;
  u64 spins = 0;
  for (;;) {
    const TraceOp cpu_op = raw_.next(core);
    // Safety valve: a working set that fits entirely in the caches would
    // otherwise never emit again. Model the occasional cold/DMA miss by
    // forcing one through after a long all-hit streak.
    if (++spins > 100'000) {
      TraceOp out;
      out.gap = accumulated_gap;
      out.is_write = cpu_op.is_write;
      out.addr = cpu_op.addr;
      ++mem_requests_[core];
      return out;
    }
    cpu_instructions_[core] += cpu_op.gap + 1;
    accumulated_gap += cpu_op.gap + 1;

    const cache::HierarchyResult r =
        stacks_[core]->access(cpu_op.addr, cpu_op.is_write);
    // Hit latency is hidden compute time: fold it into the gap as the
    // instructions the core could have retired meanwhile.
    accumulated_gap +=
        static_cast<u64>(static_cast<double>(r.latency_cycles) * ipc_);

    for (const Addr wb : r.memory_writebacks) {
      TraceOp w;
      w.gap = 0;
      w.is_write = true;
      w.addr = wb;
      pending_[core].push_back(w);
    }

    if (r.memory_read) {
      TraceOp out;
      out.gap = accumulated_gap;
      out.is_write = false;
      out.addr = cpu_op.addr;
      ++mem_requests_[core];
      return out;
    }
    if (!pending_[core].empty()) {
      TraceOp out = pending_[core].front();
      pending_[core].pop_front();
      out.gap = accumulated_gap;
      ++mem_requests_[core];
      return out;
    }
    // Pure cache hit: keep accumulating until something reaches memory.
  }
}

pcm::LogicalLine CacheFilteredSource::make_write_data(Addr addr,
                                                      mem::DataStore& store,
                                                      u32 core) {
  return raw_.make_write_data(addr, store, core);
}

double CacheFilteredSource::effective_mem_per_kilo(u32 core) const {
  TW_EXPECTS(core < stacks_.size());
  if (cpu_instructions_[core] == 0) return 0.0;
  return 1000.0 * static_cast<double>(mem_requests_[core]) /
         static_cast<double>(cpu_instructions_[core]);
}

}  // namespace tw::workload
