#pragma once
// PARSEC 2.0 workload profiles (Table III + Figure 3 calibration).
//
// The paper drives gem5 with eight multi-threaded PARSEC workloads. We
// cannot replay the original traces, so each workload is characterized by
// the statistics the write schemes actually observe:
//   * memory-level request rates (RPKI / WPKI, Table III — post-L3),
//   * per-64-bit-unit RESET/SET counts after data inversion (Figure 3;
//     the text pins the average at 2.9 RESET + 6.7 SET = 9.6 changed bits,
//     blackscholes at ~2 total, vips at ~19, and names vips/ferret as the
//     near-fifty-fifty outliers — per-workload values are estimated from
//     the printed bars within those constraints),
//   * data-sharing intensity (Table III sharing column).

#include <string>
#include <string_view>
#include <vector>

#include "tw/common/types.hpp"

namespace tw::workload {

/// Qualitative levels from Table III.
enum class Level : u8 { kLow, kMedium, kHigh };

/// Write-content distribution class. kMutate is the paper-calibrated
/// Figure 3 mixture (the default everywhere); the other classes open the
/// content axis the encoder pre-stage (tw/encode/) is measured against.
enum class ContentClass : u8 {
  kMutate,        ///< Figure 3 rewrite/Poisson-mutation mixture
  kCompressible,  ///< narrow values: constant high half (sign extension)
  kZipfByte,      ///< bytes from a skewed 256-symbol alphabet
  kAdversarial,   ///< anti-code: flips exactly half the bits every write
};

/// Canonical short name ("mutate", "compressible", "zipf", "adversarial").
const char* content_class_name(ContentClass c);

/// Statistical characterization of one workload.
struct WorkloadProfile {
  std::string name;
  std::string domain;          ///< application domain (Table III)
  double rpki = 1.0;           ///< memory reads per kilo-instruction
  double wpki = 0.5;           ///< memory writes per kilo-instruction

  /// Write content is a two-component mixture, reflecting real traces:
  /// with probability `line_rewrite_prob` a write replaces the whole line
  /// with fresh content (media frames, storage streams — the heavy tail
  /// that drives Tetris above 1 write unit and makes vips/ferret look
  /// fifty-fifty); otherwise each unit gets a sparse Poisson mutation.
  double line_rewrite_prob = 0.02;
  double mean_resets = 2.9;  ///< small-write RESETs per 64-bit unit
  double mean_sets = 6.7;    ///< small-write SETs per 64-bit unit

  /// Payload distribution. All paper profiles use kMutate; the other
  /// classes are synthetic axes for the encoder ablations and reuse the
  /// profile's rate/burstiness/sharing parameters unchanged.
  ContentClass content = ContentClass::kMutate;

  /// Figure 3 targets (per-unit counts after inversion, measured over the
  /// whole mixture). Locked by tests against the generator's output.
  double fig3_resets = 2.9;
  double fig3_sets = 6.7;

  Level sharing = Level::kMedium;   ///< data usage of sharing
  Level exchange = Level::kMedium;  ///< data usage of exchange

  /// Temporal burstiness in [0,1]: 0 = smooth geometric inter-arrivals;
  /// higher values concentrate requests into ON periods (8x the rate)
  /// while preserving the average RPKI/WPKI. Bursts are what fill the
  /// 32-entry write queue and trigger strict drains.
  double burstiness = 0.0;

  /// Per-core private working set, in cache lines.
  u64 working_set_lines = 64 * 1024;
  /// Ones-fraction of first-touch memory content. SET-dominant profiles
  /// start zero-rich so repeated writes can keep SETting without
  /// saturating.
  double initial_ones_fraction = 0.5;

  double mem_ops_per_kilo() const { return rpki + wpki; }
  double write_fraction() const {
    const double t = rpki + wpki;
    return t <= 0.0 ? 0.0 : wpki / t;
  }
  double mean_changed_bits() const { return fig3_resets + fig3_sets; }
};

/// The eight PARSEC 2.0 workloads of Table III, in the paper's order.
const std::vector<WorkloadProfile>& parsec_profiles();

/// Look up a profile by name; throws ContractViolation if unknown.
const WorkloadProfile& profile_by_name(std::string_view name);

/// Fraction of accesses that target the cross-core shared region for a
/// sharing level (low/medium/high).
double shared_fraction(Level sharing);

}  // namespace tw::workload
