#include "tw/workload/trace_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace tw::workload {
namespace {

constexpr std::array<char, 8> kMagic = {'T', 'W', 'T', 'R', 'A', 'C', 'E',
                                        '1'};

template <typename T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("trace file truncated");
  return v;
}

}  // namespace

void save_trace(const std::string& path,
                const std::vector<TraceRecord>& records, u32 cores) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);
  out.write(kMagic.data(), kMagic.size());
  put<u32>(out, static_cast<u32>(records.size()));
  put<u32>(out, cores);
  for (const auto& r : records) {
    put<u64>(out, r.gap);
    put<u64>(out, r.addr);
    put<u32>(out, r.core);
    put<u8>(out, r.is_write ? 1 : 0);
    const u8 pad[3] = {0, 0, 0};
    out.write(reinterpret_cast<const char*>(pad), 3);
  }
  if (!out) throw std::runtime_error("trace write failed: " + path);
}

std::vector<TraceRecord> load_trace(const std::string& path, u32* cores) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error("bad trace magic: " + path);
  }
  const u32 count = get<u32>(in);
  const u32 ncores = get<u32>(in);
  if (cores != nullptr) *cores = ncores;

  std::vector<TraceRecord> records;
  records.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    TraceRecord r;
    r.gap = get<u64>(in);
    r.addr = get<u64>(in);
    r.core = get<u32>(in);
    r.is_write = get<u8>(in) != 0;
    u8 pad[3];
    in.read(reinterpret_cast<char*>(pad), 3);
    if (!in) throw std::runtime_error("trace file truncated");
    records.push_back(r);
  }
  return records;
}

std::vector<TraceRecord> capture(TraceGenerator& gen, u32 cores,
                                 u64 count) {
  std::vector<TraceRecord> records;
  records.reserve(cores * count);
  for (u32 c = 0; c < cores; ++c) {
    for (u64 i = 0; i < count; ++i) {
      const TraceOp op = gen.next(c);
      TraceRecord r;
      r.gap = op.gap;
      r.addr = op.addr;
      r.core = c;
      r.is_write = op.is_write;
      records.push_back(r);
    }
  }
  return records;
}

}  // namespace tw::workload
