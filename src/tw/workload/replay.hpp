#pragma once
// TraceReplaySource: drive the simulator from a recorded request stream
// (see trace_io.hpp) instead of the live generator. Address/type/timing
// come from the trace; write payloads are synthesized against current
// memory content with the profile's bit statistics, so a replayed trace
// exercises the same queueing behaviour deterministically.

#include <vector>

#include "tw/workload/generator.hpp"
#include "tw/workload/trace_io.hpp"

namespace tw::workload {

/// Replays TraceRecords per core; wraps around when a core's stream is
/// exhausted (so any instruction budget can be driven from any trace).
class TraceReplaySource : public RequestSource {
 public:
  /// `records` may be interleaved; they are split by core id. Every core
  /// in [0, cores) must have at least one record.
  TraceReplaySource(std::vector<TraceRecord> records, u32 cores,
                    const WorkloadProfile& content_profile,
                    const pcm::GeometryParams& geometry, u64 seed);

  TraceOp next(u32 core) override;

  pcm::LogicalLine make_write_data(Addr addr, mem::DataStore& store,
                                   u32 core) override;

  /// How many times core `c`'s stream wrapped around.
  u64 wraps(u32 core) const { return wraps_[core]; }

 private:
  std::vector<std::vector<TraceRecord>> per_core_;
  std::vector<std::size_t> cursor_;
  std::vector<u64> wraps_;
  TraceGenerator content_;  ///< payload synthesis only
};

}  // namespace tw::workload
