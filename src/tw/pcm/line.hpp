#pragma once
// Physical cache-line state as stored in the PCM array: per-data-unit cell
// words plus the Flip-N-Write flip tag. Fixed inline capacity avoids heap
// traffic in the simulator's hot path (max 32 units = 256 B lines).

#include <array>
#include <span>

#include "tw/common/assert.hpp"
#include "tw/common/bits.hpp"
#include "tw/common/types.hpp"

namespace tw::pcm {

/// Maximum data units per cache line supported inline (256 B / 64-bit).
inline constexpr u32 kMaxUnitsPerLine = 32;

/// Physical line content: `units` 64-bit cell words + one flip bit each.
/// The *logical* value of unit i is `flip[i] ? ~cells[i] : cells[i]`.
class LineBuf {
 public:
  LineBuf() = default;

  /// A line of `units` data units, cells zeroed, flags clear.
  explicit LineBuf(u32 units) : units_(units) {
    TW_EXPECTS(units >= 1 && units <= kMaxUnitsPerLine);
    cells_.fill(0);
    flip_.fill(false);
  }

  u32 units() const { return units_; }

  u64 cell(u32 i) const {
    TW_EXPECTS(i < units_);
    return cells_[i];
  }
  void set_cell(u32 i, u64 v) {
    TW_EXPECTS(i < units_);
    cells_[i] = v;
  }

  bool flip(u32 i) const {
    TW_EXPECTS(i < units_);
    return flip_[i];
  }
  void set_flip(u32 i, bool f) {
    TW_EXPECTS(i < units_);
    flip_[i] = f;
  }

  /// Logical (post-inversion) value of unit i.
  u64 logical(u32 i) const {
    TW_EXPECTS(i < units_);
    return flip_[i] ? ~cells_[i] : cells_[i];
  }

  /// Write the logical value of unit i given an explicit flip decision.
  void store_logical(u32 i, u64 logical_value, bool flipped) {
    TW_EXPECTS(i < units_);
    cells_[i] = flipped ? ~logical_value : logical_value;
    flip_[i] = flipped;
  }

  /// Per-unit content-encoder metadata tag (tw/encode/): which code the
  /// encoder stored this unit under. Always 0 when no encoder is
  /// configured — the tag cells physically exist next to the flip tag but
  /// carry at most Encoder::meta_bits() significant bits.
  u8 meta(u32 i) const {
    TW_EXPECTS(i < units_);
    return meta_[i];
  }
  void set_meta(u32 i, u8 m) {
    TW_EXPECTS(i < units_);
    meta_[i] = m;
  }
  std::span<const u8> meta_tags() const { return {meta_.data(), units_}; }

  std::span<const u64> cell_words() const {
    return {cells_.data(), units_};
  }

  /// Raw per-unit flip tags (unchecked; the bounds are units()). The
  /// write-path loops read cells/flips through these spans instead of the
  /// contract-checked per-element accessors.
  std::span<const bool> flip_bits() const { return {flip_.data(), units_}; }

  bool operator==(const LineBuf& o) const {
    if (units_ != o.units_) return false;
    for (u32 i = 0; i < units_; ++i) {
      if (cells_[i] != o.cells_[i] || flip_[i] != o.flip_[i] ||
          meta_[i] != o.meta_[i]) {
        return false;
      }
    }
    return true;
  }

 private:
  std::array<u64, kMaxUnitsPerLine> cells_{};
  std::array<bool, kMaxUnitsPerLine> flip_{};
  std::array<u8, kMaxUnitsPerLine> meta_{};
  u32 units_ = 0;
};

/// A logical (already de-inverted) line value, as the CPU sees it.
class LogicalLine {
 public:
  LogicalLine() = default;
  explicit LogicalLine(u32 units) : units_(units) {
    TW_EXPECTS(units >= 1 && units <= kMaxUnitsPerLine);
    words_.fill(0);
  }

  /// Reconstruct the logical view of a physical line.
  static LogicalLine from_physical(const LineBuf& phys) {
    LogicalLine l(phys.units());
    for (u32 i = 0; i < phys.units(); ++i) l.words_[i] = phys.logical(i);
    return l;
  }

  u32 units() const { return units_; }
  u64 word(u32 i) const {
    TW_EXPECTS(i < units_);
    return words_[i];
  }
  void set_word(u32 i, u64 v) {
    TW_EXPECTS(i < units_);
    words_[i] = v;
  }
  std::span<const u64> words() const { return {words_.data(), units_}; }
  std::span<u64> words_mut() { return {words_.data(), units_}; }

  bool operator==(const LogicalLine& o) const {
    if (units_ != o.units_) return false;
    for (u32 i = 0; i < units_; ++i)
      if (words_[i] != o.words_[i]) return false;
    return true;
  }

 private:
  std::array<u64, kMaxUnitsPerLine> words_{};
  u32 units_ = 0;
};

}  // namespace tw::pcm
