#include "tw/pcm/array.hpp"

#include <algorithm>

#include "tw/common/assert.hpp"

namespace tw::pcm {

PcmArray::PcmArray(u64 bits, u64 endurance_limit)
    : value_(bits, false), pulses_(bits, 0), endurance_(endurance_limit) {
  TW_EXPECTS(bits > 0);
}

bool PcmArray::read(u64 bit) const {
  TW_EXPECTS(bit < size_bits());
  return value_[bit];
}

u64 PcmArray::read_word(u64 bit, u32 count) const {
  TW_EXPECTS(count <= 64);
  TW_EXPECTS(bit + count <= size_bits());
  u64 w = 0;
  for (u32 i = 0; i < count; ++i) {
    if (value_[bit + i]) w |= (u64{1} << i);
  }
  return w;
}

ProgramResult PcmArray::program(u64 bit, bool value) {
  TW_EXPECTS(bit < size_bits());
  if (endurance_ != 0 && pulses_[bit] >= endurance_) {
    return ProgramResult::kWornOut;
  }
  const u64 prior = pulses_[bit];
  ++pulses_[bit];
  ++total_pulses_;
  if (endurance_ != 0 && pulses_[bit] == endurance_) ++worn_out_;
  if (fault_hook_ != nullptr &&
      fault_hook_->pulse_fails(bit, value, prior, fault_attempt_)) {
    // Transient failure: the pulse was driven (wear above) but the cell
    // kept its old value; the executor's verify-and-retry path re-drives.
    ++failed_pulses_;
    return ProgramResult::kFailed;
  }
  const bool same = value_[bit] == value;
  value_[bit] = value;
  return same ? ProgramResult::kRedundant : ProgramResult::kOk;
}

BitTransitions PcmArray::program_word_dcw(u64 bit, u64 value, u32 count) {
  TW_EXPECTS(count <= 64);
  TW_EXPECTS(bit + count <= size_bits());
  BitTransitions t;
  for (u32 i = 0; i < count; ++i) {
    const bool want = ((value >> i) & 1u) != 0;
    const bool have = value_[bit + i];
    if (want == have) continue;
    if (program(bit + i, want) == ProgramResult::kWornOut) continue;
    if (want) {
      ++t.sets;
    } else {
      ++t.resets;
    }
  }
  return t;
}

u64 PcmArray::wear(u64 bit) const {
  TW_EXPECTS(bit < size_bits());
  return pulses_[bit];
}

u64 PcmArray::max_wear() const {
  return pulses_.empty() ? 0 : *std::max_element(pulses_.begin(), pulses_.end());
}

}  // namespace tw::pcm
