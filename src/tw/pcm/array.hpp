#pragma once
// A small bit-addressable PCM cell array with per-cell endurance counting.
//
// This models the physical array a write driver programs: each program
// pulse targets individual cells (SET or RESET), and cells fail after an
// endurance limit. Used by write-driver tests and the wear-analysis
// example; the full-system simulator tracks content at line granularity
// (tw::mem::DataStore) for scale.

#include <vector>

#include "tw/common/bits.hpp"
#include "tw/common/types.hpp"

namespace tw::pcm {

/// Result of a program pulse on one cell.
enum class ProgramResult : u8 {
  kOk,          ///< cell updated
  kRedundant,   ///< cell already held the value (pulse still wears it)
  kWornOut,     ///< endurance exceeded; cell is stuck
};

/// Dense array of SLC PCM cells with endurance accounting.
class PcmArray {
 public:
  /// Create `bits` cells, all RESET ('0'), with the given endurance limit
  /// (0 = unlimited).
  explicit PcmArray(u64 bits, u64 endurance_limit = 0);

  u64 size_bits() const { return static_cast<u64>(value_.size()); }

  /// Read one cell. Reads do not wear cells.
  bool read(u64 bit) const;

  /// Read `count` cells starting at `bit` into a word (LSB-first).
  u64 read_word(u64 bit, u32 count) const;

  /// Apply one program pulse writing `value` to the cell. Wear increments
  /// whether or not the value changes (a pulse is a pulse). Worn-out cells
  /// retain their last value.
  ProgramResult program(u64 bit, bool value);

  /// Program only the bits of `value` that differ from array content
  /// (data-comparison write), LSB-first over `count` bits.
  /// Returns the transitions actually performed.
  BitTransitions program_word_dcw(u64 bit, u64 value, u32 count);

  /// Per-cell program-pulse count.
  u64 wear(u64 bit) const;

  /// Highest program count across all cells.
  u64 max_wear() const;

  /// Number of cells that exceeded the endurance limit.
  u64 worn_out_cells() const { return worn_out_; }

  u64 total_pulses() const { return total_pulses_; }

 private:
  std::vector<bool> value_;
  std::vector<u64> pulses_;
  u64 endurance_;
  u64 worn_out_ = 0;
  u64 total_pulses_ = 0;
};

}  // namespace tw::pcm
