#pragma once
// A small bit-addressable PCM cell array with per-cell endurance counting.
//
// This models the physical array a write driver programs: each program
// pulse targets individual cells (SET or RESET), and cells fail after an
// endurance limit. Used by write-driver tests and the wear-analysis
// example; the full-system simulator tracks content at line granularity
// (tw::mem::DataStore) for scale.

#include <vector>

#include "tw/common/bits.hpp"
#include "tw/common/types.hpp"

namespace tw::pcm {

/// Result of a program pulse on one cell.
enum class ProgramResult : u8 {
  kOk,          ///< cell updated
  kRedundant,   ///< cell already held the value (pulse still wears it)
  kWornOut,     ///< endurance exceeded; cell is stuck
  kFailed,      ///< transient pulse failure (fault hook); value unchanged
};

/// Decides whether a program pulse transiently fails to change its cell
/// (the cell keeps its old value; wear still accrues — the pulse was
/// driven). Installed on a PcmArray by the fault-injection subsystem
/// (tw/fault/FaultModel implements this); decisions must be pure
/// functions of their arguments so replays stay deterministic.
class CellFaultHook {
 public:
  virtual ~CellFaultHook() = default;
  /// `bit` = absolute cell index, `value` = target (true = SET),
  /// `pulse` = the cell's pulse count before this pulse, `attempt` = the
  /// retry ordinal the executor is currently driving (0 = first write).
  virtual bool pulse_fails(u64 bit, bool value, u64 pulse,
                           u32 attempt) const = 0;
};

/// Dense array of SLC PCM cells with endurance accounting.
class PcmArray {
 public:
  /// Create `bits` cells, all RESET ('0'), with the given endurance limit
  /// (0 = unlimited).
  explicit PcmArray(u64 bits, u64 endurance_limit = 0);

  u64 size_bits() const { return static_cast<u64>(value_.size()); }

  /// Split the array into `count` equal-size partitions (PALP geometry:
  /// each partition has its own sense amps and write drivers, sharing
  /// only the bank's charge pump). `count` must divide the cell count.
  void set_partitions(u32 count) {
    TW_EXPECTS(count >= 1 && size_bits() % count == 0);
    partitions_ = count;
  }

  u32 partitions() const { return partitions_; }

  /// Partition index owning cell `bit`.
  u32 partition_of(u64 bit) const {
    TW_EXPECTS(bit < size_bits());
    return static_cast<u32>(bit / (size_bits() / partitions_));
  }

  /// Read one cell. Reads do not wear cells.
  bool read(u64 bit) const;

  /// Read `count` cells starting at `bit` into a word (LSB-first).
  u64 read_word(u64 bit, u32 count) const;

  /// Apply one program pulse writing `value` to the cell. Wear increments
  /// whether or not the value changes (a pulse is a pulse). Worn-out cells
  /// retain their last value, as do cells whose pulse the installed fault
  /// hook fails (ProgramResult::kFailed).
  ProgramResult program(u64 bit, bool value);

  /// Install (or clear) the transient-fault hook consulted on every
  /// program pulse. The hook must outlive the array or be cleared first.
  void set_fault_hook(const CellFaultHook* hook) { fault_hook_ = hook; }
  /// Retry ordinal forwarded to the hook (0 = first drive of a write;
  /// the executor bumps it per verify-and-retry pass).
  void set_fault_attempt(u32 attempt) { fault_attempt_ = attempt; }

  /// Pulses the fault hook failed (diagnostics).
  u64 failed_pulses() const { return failed_pulses_; }

  /// Program only the bits of `value` that differ from array content
  /// (data-comparison write), LSB-first over `count` bits.
  /// Returns the transitions actually performed.
  BitTransitions program_word_dcw(u64 bit, u64 value, u32 count);

  /// Per-cell program-pulse count.
  u64 wear(u64 bit) const;

  /// Highest program count across all cells.
  u64 max_wear() const;

  /// Number of cells that exceeded the endurance limit.
  u64 worn_out_cells() const { return worn_out_; }

  u64 total_pulses() const { return total_pulses_; }

 private:
  std::vector<bool> value_;
  std::vector<u64> pulses_;
  u64 endurance_;
  u64 worn_out_ = 0;
  u64 total_pulses_ = 0;
  u64 failed_pulses_ = 0;
  const CellFaultHook* fault_hook_ = nullptr;
  u32 fault_attempt_ = 0;
  u32 partitions_ = 1;
};

}  // namespace tw::pcm
