#pragma once
// Energy accounting for PCM operations.

#include "tw/common/bits.hpp"
#include "tw/pcm/params.hpp"

namespace tw::pcm {

/// Accumulates programming/read energy in picojoules.
class EnergyModel {
 public:
  explicit EnergyModel(EnergyParams params = {}) : params_(params) {}

  /// Account for a write that performed the given bit transitions.
  void add_write(const BitTransitions& t) {
    write_pj_ += static_cast<double>(t.sets) * params_.set_pj +
                 static_cast<double>(t.resets) * params_.reset_pj;
    set_bits_ += t.sets;
    reset_bits_ += t.resets;
  }

  /// Account for reading `bits` cells (read-before-write or a demand read).
  void add_read(u64 bits) {
    read_pj_ += static_cast<double>(bits) * params_.read_bit_pj;
    read_bits_ += bits;
  }

  double write_energy_pj() const { return write_pj_; }
  double read_energy_pj() const { return read_pj_; }
  double total_pj() const { return write_pj_ + read_pj_; }
  u64 set_bits() const { return set_bits_; }
  u64 reset_bits() const { return reset_bits_; }
  u64 read_bits() const { return read_bits_; }

  void reset() { *this = EnergyModel(params_); }

 private:
  EnergyParams params_;
  double write_pj_ = 0.0;
  double read_pj_ = 0.0;
  u64 set_bits_ = 0;
  u64 reset_bits_ = 0;
  u64 read_bits_ = 0;
};

}  // namespace tw::pcm
