#pragma once
// Shared charge-pump occupancy model for partition-level parallelism
// (PALP, arXiv:1908.07966). Each bank owns one pump; instead of the
// legacy binary bank lock, the pump tracks how many partition-local
// write drivers are drawing current concurrently ("ways") and how many
// reads have been admitted while the pump is loaded (PALP's
// read-after-write-current limit). Multi-line Tetris batches consume
// the full bank budget and therefore take the pump exclusively.
//
// The pump itself holds no admission policy — allowances (write ways,
// concurrent-read cap, brown-out shrinkage) live in the controller and
// fault model; the pump only answers "what is running right now" and
// keeps the overlap/stall statistics the benches and gauges report.

#include "tw/common/assert.hpp"
#include "tw/common/types.hpp"

namespace tw::pcm {

/// Occupancy state of one bank's shared charge pump.
class ChargePump {
 public:
  /// True when any write current is being drawn (partition writes or an
  /// exclusive full-budget batch): reads count against the RWW cap.
  bool loaded() const { return active_ > 0 || exclusive_; }

  /// Number of partition writes currently drawing current.
  u32 active_writes() const { return active_; }

  /// Reads currently admitted under the read-while-write limit.
  u32 rww_reads() const { return rww_; }

  /// True while a full-budget multi-line batch owns the pump.
  bool exclusive() const { return exclusive_; }

  /// Can another partition write start when `ways` drivers are allowed
  /// to share the pump?
  bool can_admit_write(u32 ways) const {
    return !exclusive_ && active_ < ways;
  }

  /// Can a full-budget batch take the pump? Only when nothing draws.
  bool can_admit_exclusive() const { return !loaded(); }

  /// Can a read issue when at most `cap` reads may overlap a loaded
  /// pump? An unloaded pump always admits.
  bool can_admit_read(u32 cap) const { return !loaded() || rww_ < cap; }

  void begin_write() {
    TW_EXPECTS(!exclusive_);
    ++active_;
    if (active_ > 1) ++overlapped_writes_;
  }
  void end_write() {
    TW_EXPECTS(active_ > 0);
    --active_;
  }

  void begin_exclusive() {
    TW_EXPECTS(!loaded());
    exclusive_ = true;
  }
  void end_exclusive() {
    TW_EXPECTS(exclusive_);
    exclusive_ = false;
  }

  /// Record a read admitted while the pump was loaded.
  void begin_rww_read() {
    ++rww_;
    ++overlapped_reads_;
  }
  void end_rww_read() {
    TW_EXPECTS(rww_ > 0);
    --rww_;
  }

  /// Record a read the RWW cap held back this dispatch round.
  void note_stall() { ++stalls_; }

  /// Writes that started while another partition write was drawing.
  u64 overlapped_writes() const { return overlapped_writes_; }
  /// Reads admitted while the pump was loaded.
  u64 overlapped_reads() const { return overlapped_reads_; }
  /// Dispatch-round read stalls charged to the RWW cap.
  u64 stalls() const { return stalls_; }

 private:
  u32 active_ = 0;
  u32 rww_ = 0;
  bool exclusive_ = false;
  u64 overlapped_writes_ = 0;
  u64 overlapped_reads_ = 0;
  u64 stalls_ = 0;
};

}  // namespace tw::pcm
