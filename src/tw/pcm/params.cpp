#include "tw/pcm/params.hpp"

#include "tw/common/strings.hpp"

namespace tw::pcm {

void PcmConfig::validate() const {
  if (!timing.valid()) TW_FAIL("invalid PCM timing parameters");
  if (!power.valid()) TW_FAIL("invalid PCM power parameters");
  if (!geometry.valid()) TW_FAIL("invalid PCM geometry parameters");
  if (!energy.valid()) TW_FAIL("invalid PCM energy parameters");
}

std::string PcmConfig::describe() const {
  return std::to_string(geometry.chips_per_bank) + "xX" +
         std::to_string(geometry.chip_write_bits) + " chips/bank, " +
         std::to_string(geometry.banks) + " banks, line=" +
         std::to_string(geometry.cache_line_bytes) + "B, Tread=" +
         fixed(to_ns(timing.t_read), 0) + "ns Treset=" +
         fixed(to_ns(timing.t_reset), 0) + "ns Tset=" +
         fixed(to_ns(timing.t_set), 0) + "ns, K=" + std::to_string(k()) +
         " L=" + std::to_string(l()) +
         " budget=" + std::to_string(bank_power_budget()) + " (" +
         (power.global_charge_pump ? "GCP" : "per-chip") + ")";
}

PcmConfig table2_config() {
  return PcmConfig{};  // defaults encode Table II
}

}  // namespace tw::pcm
