#include "tw/pcm/params.hpp"

#include "tw/common/strings.hpp"

namespace tw::pcm {

const char* channel_interleave_name(ChannelInterleave i) {
  switch (i) {
    case ChannelInterleave::kLine: return "line";
    case ChannelInterleave::kBank: return "bank";
    case ChannelInterleave::kRow: return "row";
  }
  return "unknown";
}

std::string GeometryParams::error() const {
  const auto pow2_msg = [](const char* what, u64 v) {
    return std::string(what) + " must be a power of two, got " +
           std::to_string(v);
  };
  if (chips_per_bank == 0) return "chips_per_bank must be >= 1";
  if (chip_write_bits == 0) return "chip_write_bits must be >= 1";
  if (data_unit_bits == 0 || data_unit_bits > 64 || !is_pow2(data_unit_bits)) {
    return "data_unit_bits must be a power of two in [1, 64], got " +
           std::to_string(data_unit_bits);
  }
  if (cache_line_bytes < 8 || !is_pow2(cache_line_bytes)) {
    return "cache_line_bytes must be a power of two >= 8, got " +
           std::to_string(cache_line_bytes);
  }
  if ((cache_line_bytes * 8) % data_unit_bits != 0) {
    return "cache line (" + std::to_string(cache_line_bytes * 8) +
           " bits) must be a whole number of data units (" +
           std::to_string(data_unit_bits) + " bits each)";
  }
  if (banks == 0 || !is_pow2(banks)) return pow2_msg("banks", banks);
  if (ranks == 0) return "ranks must be >= 1";
  if (subarrays_per_bank == 0 || !is_pow2(subarrays_per_bank)) {
    return pow2_msg("subarrays_per_bank", subarrays_per_bank) +
           " (the row decoder extracts log2(subarrays_per_bank) address "
           "bits to select the partition within a bank)";
  }
  if (channels == 0 || !is_pow2(channels)) {
    return pow2_msg("channels", channels) +
           " (the channel decoder extracts log2(channels) address bits)";
  }
  if (capacity_bytes < u64{cache_line_bytes} * channels) {
    return "capacity_bytes (" + std::to_string(capacity_bytes) +
           ") must hold at least one " + std::to_string(cache_line_bytes) +
           "B line per channel";
  }
  if (channels > 1 && channel_interleave == ChannelInterleave::kRow &&
      !is_pow2(capacity_bytes / cache_line_bytes)) {
    return "row-interleaved channels need a power-of-two line count: "
           "capacity_bytes/cache_line_bytes = " +
           std::to_string(capacity_bytes / cache_line_bytes);
  }
  return "";
}

void PcmConfig::validate() const {
  if (!timing.valid()) TW_FAIL("invalid PCM timing parameters");
  if (!power.valid()) TW_FAIL("invalid PCM power parameters");
  const std::string geo = geometry.error();
  if (!geo.empty()) TW_FAIL(("invalid PCM geometry: " + geo).c_str());
  if (!energy.valid()) TW_FAIL("invalid PCM energy parameters");
}

std::string PcmConfig::describe() const {
  return std::to_string(geometry.chips_per_bank) + "xX" +
         std::to_string(geometry.chip_write_bits) + " chips/bank, " +
         std::to_string(geometry.banks) + " banks, line=" +
         std::to_string(geometry.cache_line_bytes) + "B, Tread=" +
         fixed(to_ns(timing.t_read), 0) + "ns Treset=" +
         fixed(to_ns(timing.t_reset), 0) + "ns Tset=" +
         fixed(to_ns(timing.t_set), 0) + "ns, K=" + std::to_string(k()) +
         " L=" + std::to_string(l()) +
         " budget=" + std::to_string(bank_power_budget()) + " (" +
         (power.global_charge_pump ? "GCP" : "per-chip") + ")";
}

PcmConfig table2_config() {
  return PcmConfig{};  // defaults encode Table II
}

}  // namespace tw::pcm
