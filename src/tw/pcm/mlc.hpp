#pragma once
// Multi-Level-Cell PCM model (2 bits/cell). The paper focuses on SLC "for
// its better write performance" (Section II); this module quantifies that
// choice: MLC programs intermediate resistance levels with iterative
// program-and-verify (P&V) pulses, so writes are slower and the power
// budget is consumed by verify-bounded pulse trains (FPB, the paper's
// ref [16], budgets exactly these).
//
// Encoding: a 64-bit data word occupies 32 cells; bit pairs map to the
// four levels through Gray coding so a single-bit data change moves at
// most one level step.

#include <array>

#include "tw/common/types.hpp"
#include "tw/pcm/params.hpp"

namespace tw::pcm {

/// MLC device parameters.
struct MlcParams {
  /// Average P&V iterations to settle each target level. Level 0 is full
  /// RESET (single strong pulse), level 3 full SET (slow crystallizing
  /// pulse), levels 1-2 are partial states needing tight verify loops.
  std::array<u32, 4> program_iterations{1, 6, 5, 2};
  Tick iteration_pulse = ns(53);  ///< one partial program pulse
  Tick verify_read = ns(25);     ///< verify sensing after each pulse
  /// Pulse current per level, in SET-current units per cell.
  std::array<u32, 4> level_current{2, 1, 1, 1};

  /// Worst-case per-cell program time (the slowest level).
  Tick worst_cell_time() const {
    u32 it = 0;
    for (const u32 i : program_iterations) it = std::max(it, i);
    return it * (iteration_pulse + verify_read);
  }
};

/// Gray-coded level of a 2-bit pair (msb, lsb): 00->0, 01->1, 11->2,
/// 10->3.
u32 mlc_level(bool msb, bool lsb);

/// Per-cell levels of a 64-bit word (32 cells; cell c holds bits
/// 2c+1:2c).
std::array<u8, 32> mlc_levels(u64 word);

/// Cost of writing `next` over `old_word` in MLC encoding.
struct MlcWriteCost {
  u32 cells_changed = 0;    ///< cells whose level must move
  u32 total_iterations = 0; ///< sum of P&V iterations (energy proxy)
  Tick program_time = 0;    ///< parallel completion: slowest changed cell
  u32 peak_current = 0;     ///< sum of changed cells' pulse currents
};

MlcWriteCost mlc_write_cost(u64 old_word, u64 next, const MlcParams& p);

/// Derive an effective device config for an MLC part: same geometry and
/// read path, write timing replaced by the worst-case P&V train. The
/// resulting config drives the existing write schemes, giving the
/// SLC-vs-MLC comparison of ablation_mlc.
PcmConfig mlc_effective_config(const PcmConfig& slc, const MlcParams& p);

}  // namespace tw::pcm
