#pragma once
// Bank-level occupancy model: a bank services one command at a time and is
// busy until the command's service time elapses. (PCM has no destructive
// row buffer to manage; reads are fixed-latency and writes take the active
// write scheme's computed service time.)

#include "tw/common/assert.hpp"
#include "tw/common/types.hpp"

namespace tw::pcm {

/// One PCM bank's timing state.
class PcmBank {
 public:
  /// True if the bank can accept a command at `now`.
  bool idle_at(Tick now) const { return now >= busy_until_; }

  /// Earliest tick the bank becomes free.
  Tick free_at() const { return busy_until_; }

  /// Occupy the bank from `start` for `duration`. `start` must not precede
  /// the bank becoming free.
  void occupy(Tick start, Tick duration) {
    TW_EXPECTS(start >= busy_until_);
    busy_until_ = start + duration;
    busy_total_ += duration;
    ++commands_;
  }

  /// Occupy the bank from `start` for `duration`, allowing the interval
  /// to overlap an in-flight command (partition-level parallelism: two
  /// partitions of the same bank may write concurrently when the charge
  /// pump admits both). The bank stays busy until the latest end.
  void occupy_overlapping(Tick start, Tick duration) {
    const Tick end = start + duration;
    if (end > busy_until_) busy_until_ = end;
    busy_total_ += duration;
    ++commands_;
  }

  /// Cut the current occupancy short at `at` (write pausing): the bank
  /// becomes free at `at` instead of its scheduled end. `at` must not be
  /// later than the current busy-until.
  void preempt(Tick at) {
    TW_EXPECTS(at <= busy_until_);
    busy_total_ -= busy_until_ - at;
    busy_until_ = at;
    ++preemptions_;
  }

  /// Total ticks the bank spent busy.
  Tick busy_total() const { return busy_total_; }
  u64 commands() const { return commands_; }
  u64 preemptions() const { return preemptions_; }

 private:
  Tick busy_until_ = 0;
  Tick busy_total_ = 0;
  u64 commands_ = 0;
  u64 preemptions_ = 0;
};

}  // namespace tw::pcm
