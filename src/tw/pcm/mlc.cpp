#include "tw/pcm/mlc.hpp"

#include <algorithm>

#include "tw/common/assert.hpp"
#include "tw/common/bits.hpp"

namespace tw::pcm {

u32 mlc_level(bool msb, bool lsb) {
  // Gray code: 00 -> 0, 01 -> 1, 11 -> 2, 10 -> 3.
  if (!msb) return lsb ? 1u : 0u;
  return lsb ? 2u : 3u;
}

std::array<u8, 32> mlc_levels(u64 word) {
  std::array<u8, 32> levels{};
  for (u32 c = 0; c < 32; ++c) {
    const bool lsb = get_bit(word, 2 * c);
    const bool msb = get_bit(word, 2 * c + 1);
    levels[c] = static_cast<u8>(mlc_level(msb, lsb));
  }
  return levels;
}

MlcWriteCost mlc_write_cost(u64 old_word, u64 next, const MlcParams& p) {
  const auto before = mlc_levels(old_word);
  const auto after = mlc_levels(next);
  MlcWriteCost cost;
  Tick slowest = 0;
  for (u32 c = 0; c < 32; ++c) {
    if (before[c] == after[c]) continue;
    ++cost.cells_changed;
    const u32 iters = p.program_iterations[after[c]];
    cost.total_iterations += iters;
    cost.peak_current += p.level_current[after[c]];
    slowest = std::max(slowest,
                       static_cast<Tick>(iters) *
                           (p.iteration_pulse + p.verify_read));
  }
  cost.program_time = slowest;
  return cost;
}

PcmConfig mlc_effective_config(const PcmConfig& slc, const MlcParams& p) {
  TW_EXPECTS(p.iteration_pulse > 0);
  PcmConfig mlc = slc;
  // Writes: the SET-role time becomes the slowest P&V train; the
  // RESET-role time is the single strong pulse of level 0.
  mlc.timing.t_set = p.worst_cell_time();
  mlc.timing.t_reset =
      p.program_iterations[0] * (p.iteration_pulse + p.verify_read);
  // A strong RESET pulse still draws L x the partial-pulse current.
  mlc.power.reset_current_ratio_l =
      std::max<u32>(1, p.level_current[0] / std::max<u32>(
                                                1, p.level_current[3]));
  // Capacity doubles per cell; geometry (interface width) is unchanged.
  mlc.validate();
  return mlc;
}

}  // namespace tw::pcm
