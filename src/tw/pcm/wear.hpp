#pragma once
// Endurance/wear tracking: per-line bit-program counts. PCM cells endure
// ~10^8 programs; schemes that write fewer bits (DCW-family, Tetris) extend
// lifetime. Tracked sparsely by line address.

#include <unordered_map>

#include "tw/common/bits.hpp"
#include "tw/common/types.hpp"

namespace tw::pcm {

/// Per-line wear statistics.
struct LineWear {
  u64 writes = 0;        ///< line write services
  u64 bits_programmed = 0;  ///< total SET+RESET bit operations
};

/// Aggregate wear summary.
struct WearSummary {
  u64 lines_touched = 0;
  u64 total_writes = 0;
  u64 total_bits = 0;
  u64 max_line_bits = 0;     ///< hottest line's programmed-bit count
  double avg_bits_per_write = 0.0;
};

/// Device lifetime projection from a wear summary.
struct LifetimeEstimate {
  double worst_cell_pulses_per_second = 0.0;
  double lifetime_seconds = 0.0;
  double lifetime_years = 0.0;
};

/// Project device lifetime: the hottest line's programmed bits, assumed
/// uniform within the line (DCW-family writes touch random changed bits),
/// give the worst cell's pulse rate; endurance / rate = lifetime.
inline LifetimeEstimate estimate_lifetime(const WearSummary& wear,
                                          double sim_seconds,
                                          double cell_endurance = 1e8,
                                          u32 bits_per_line = 512) {
  LifetimeEstimate e;
  if (sim_seconds <= 0.0 || wear.max_line_bits == 0 || bits_per_line == 0) {
    return e;
  }
  e.worst_cell_pulses_per_second =
      static_cast<double>(wear.max_line_bits) /
      static_cast<double>(bits_per_line) / sim_seconds;
  e.lifetime_seconds = cell_endurance / e.worst_cell_pulses_per_second;
  e.lifetime_years = e.lifetime_seconds / (365.25 * 24 * 3600);
  return e;
}

/// Sparse wear tracker keyed by line address.
class WearTracker {
 public:
  /// Record a line write that programmed the given transitions.
  void record(Addr line_addr, const BitTransitions& t) {
    auto& w = wear_[line_addr];
    w.writes += 1;
    w.bits_programmed += t.total();
  }

  /// Record extra pulses that did not constitute a new line write —
  /// fault-injection retry re-drives. Wear accrues (the pulses were
  /// driven) but the service count, and with it bits-per-write, does not.
  void record_retry(Addr line_addr, const BitTransitions& t) {
    wear_[line_addr].bits_programmed += t.total();
  }

  /// Wear state of one line (zero-initialized if untouched).
  LineWear line(Addr line_addr) const {
    const auto it = wear_.find(line_addr);
    return it == wear_.end() ? LineWear{} : it->second;
  }

  WearSummary summary() const {
    WearSummary s;
    s.lines_touched = wear_.size();
    for (const auto& [_, w] : wear_) {
      s.total_writes += w.writes;
      s.total_bits += w.bits_programmed;
      if (w.bits_programmed > s.max_line_bits)
        s.max_line_bits = w.bits_programmed;
    }
    s.avg_bits_per_write =
        s.total_writes == 0
            ? 0.0
            : static_cast<double>(s.total_bits) /
                  static_cast<double>(s.total_writes);
    return s;
  }

  void reset() { wear_.clear(); }

 private:
  std::unordered_map<Addr, LineWear> wear_;
};

}  // namespace tw::pcm
