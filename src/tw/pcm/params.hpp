#pragma once
// PCM device parameters (Table II of the paper) and derived asymmetry
// constants. All defaults reproduce the paper's Samsung-prototype setup:
//
//   READ 50 ns, RESET 53 ns, SET 430 ns, Creset = 2 x Cset,
//   4 x X16 chips per bank, 8 B write unit per bank, 64 B cache line,
//   8 banks, single rank, global charge pump (GCP) current sharing.

#include <string>

#include "tw/common/assert.hpp"
#include "tw/common/types.hpp"

namespace tw::pcm {

/// Device timing parameters.
struct TimingParams {
  Tick t_read = ns(50);    ///< array read latency
  Tick t_reset = ns(53);   ///< RESET (write '0') pulse width
  Tick t_set = ns(430);    ///< SET (write '1') pulse width

  /// Time-asymmetry ratio K = Tset/Treset rounded to an integer number of
  /// sub-write-units (the paper uses K = 8 for 430/53).
  u32 time_ratio_k() const {
    TW_EXPECTS(t_reset > 0);
    const u64 k = (t_set + t_reset / 2) / t_reset;
    return static_cast<u32>(k == 0 ? 1 : k);
  }

  bool valid() const { return t_reset > 0 && t_set >= t_reset; }
};

/// Current / power-budget parameters, expressed in units of SET current
/// (1 "current unit" = the current of one concurrent SET bit-write).
struct PowerParams {
  u32 reset_current_ratio_l = 2;   ///< Creset / Cset (the paper's L)
  u32 chip_budget = 32;            ///< concurrent SET-equivalents per chip
  bool global_charge_pump = true;  ///< GCP: chips share current in a bank

  bool valid() const { return reset_current_ratio_l >= 1 && chip_budget > 0; }
};

/// Which line-index bits select the channel in a multi-channel topology.
enum class ChannelInterleave : u8 {
  kLine = 0,  ///< lowest line bits: consecutive lines rotate channels
  kBank = 1,  ///< above the bank bits: bank stride stays within a channel
  kRow = 2,   ///< top bits: contiguous capacity partitions per channel
};

const char* channel_interleave_name(ChannelInterleave i);

/// Memory organization (bank-level geometry).
struct GeometryParams {
  u32 chips_per_bank = 4;       ///< X16 chips forming one 64-bit bank
  u32 chip_write_bits = 16;     ///< write-unit width per chip (X16)
  u32 data_unit_bits = 64;      ///< the paper's "data unit" (one bank word)
  u32 cache_line_bytes = 64;    ///< last-level cache line size
  u32 banks = 8;                ///< banks per rank
  u32 ranks = 1;
  /// Subarrays (partitions) per bank (paper refs [13][15], PALP): reads
  /// may proceed in one subarray while another subarray of the same bank
  /// is being written (read current is tiny). Writes serialize on the
  /// bank's charge pump unless the controller's PALP mode admits
  /// multiple partition writes as concurrent pump ways (see
  /// mem::PalpConfig). 1 = the paper's baseline organization.
  u32 subarrays_per_bank = 1;
  u64 capacity_bytes = u64{4} * 1024 * 1024 * 1024;  ///< 4 GB SLC PCM
  /// Independent channels, each with its own controller, bank array and
  /// content store. 1 = the paper's single-channel organization.
  u32 channels = 1;
  /// Which line-index bits route to a channel (ignored for channels == 1).
  ChannelInterleave channel_interleave = ChannelInterleave::kLine;

  /// Data units per cache line (8 for 64 B lines with 64-bit units).
  u32 units_per_line() const {
    return cache_line_bytes * 8 / data_unit_bits;
  }

  /// Write-unit width per bank in bits (chips x per-chip width).
  u32 bank_write_bits() const { return chips_per_bank * chip_write_bits; }

  /// Lines per channel (kRow interleave partitions capacity contiguously).
  u64 lines_per_channel() const {
    const u32 c = channels == 0 ? 1 : channels;
    return capacity_bytes / c / cache_line_bytes;
  }

  /// Empty when the geometry is consistent; otherwise a human-readable
  /// description of the first violated constraint (the actionable
  /// counterpart of valid(), surfaced through config/CLI errors).
  std::string error() const;

  bool valid() const { return error().empty(); }
};

/// Per-bit programming energy (picojoules). Values follow the commonly
/// cited SLC PCM ballpark (RESET pulses are shorter but draw double
/// current; SET pulses are long and low-current).
struct EnergyParams {
  double set_pj = 13.5;     ///< energy per SET bit-write
  double reset_pj = 19.2;   ///< energy per RESET bit-write
  double read_bit_pj = 0.4; ///< energy per bit read

  bool valid() const { return set_pj > 0 && reset_pj > 0 && read_bit_pj >= 0; }
};

/// Full PCM configuration bundle.
struct PcmConfig {
  TimingParams timing;
  PowerParams power;
  GeometryParams geometry;
  EnergyParams energy;

  /// Effective power budget available to one bank write, in SET-current
  /// units: with GCP chips pool their budgets (paper: 128 per bank);
  /// without GCP each chip is limited locally, and since the schemes treat
  /// a data unit as an indivisible bank word, the usable bank budget is
  /// chips x chip_budget as well but enforcement is per-chip (see schemes).
  u32 bank_power_budget() const {
    return power.chip_budget * geometry.chips_per_bank;
  }

  /// The paper's K: number of RESET-length sub-write-units per write unit.
  u32 k() const { return timing.time_ratio_k(); }
  /// The paper's L: RESET/SET current ratio.
  u32 l() const { return power.reset_current_ratio_l; }

  void validate() const;

  /// Human-readable one-line description for reports.
  std::string describe() const;
};

/// The paper's Table II configuration (also the default-constructed state).
PcmConfig table2_config();

}  // namespace tw::pcm
