#pragma once
// Periodic metrics snapshots: a MetricsSnapshotter samples registered
// gauges (queue depths, bank occupancy, budget utilization — anything
// expressible as `double()`) on a fixed simulated-time epoch, feeding
// each sample into the stats::Registry (as `trace.<gauge>` accumulators)
// and, when the kMetrics category is live, emitting counter records that
// render as charts in the Chrome trace. A CSV writer turns collected
// counter records into a long-format table for offline analysis.
//
// Gauges are plain std::functions wired up by the harness, so this module
// needs no knowledge of the controller or PCM model.

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "tw/sim/simulator.hpp"
#include "tw/stats/registry.hpp"
#include "tw/trace/tracer.hpp"

namespace tw::trace {

class MetricsSnapshotter {
 public:
  /// Samples every `epoch` ticks of simulated time, starting one epoch
  /// after start() is called.
  MetricsSnapshotter(sim::Simulator& sim, stats::Registry& reg, Tick epoch)
      : sim_(sim), reg_(reg), epoch_(epoch) {}
  MetricsSnapshotter(const MetricsSnapshotter&) = delete;
  MetricsSnapshotter& operator=(const MetricsSnapshotter&) = delete;

  /// Register a gauge before start(). Returns its index (the kMetrics
  /// track it will chart on).
  u32 add_gauge(std::string name, std::function<double()> fn);

  /// Schedule the sampling chain. The chain re-arms only while the
  /// simulator still has other pending events, so it never keeps an
  /// otherwise-drained simulation alive.
  void start();

  /// Sample every gauge once, immediately (also used for the final
  /// partial epoch at end of run).
  void sample();

  u64 samples_taken() const { return samples_; }
  const std::vector<std::string>& gauge_names() const { return names_; }

 private:
  void arm();

  sim::Simulator& sim_;
  stats::Registry& reg_;
  Tick epoch_;
  u64 samples_ = 0;
  std::vector<std::string> names_;
  std::vector<std::function<double()>> gauges_;
  std::vector<stats::Accumulator*> accs_;
};

/// Long-format CSV of the kCounter records in `records`:
///   time_ns,name,value
/// Gauge names resolve through the manifest's counter_names table.
void write_metrics_csv(std::ostream& out,
                       const std::vector<TraceRecord>& records,
                       const RunManifest& manifest);

/// Convenience: write to `path`. Returns false if the file can't be
/// opened.
bool write_metrics_csv_file(const std::string& path,
                            const std::vector<TraceRecord>& records,
                            const RunManifest& manifest);

}  // namespace tw::trace
