#pragma once
// Tracer: owns the per-thread rings, installs/clears the thread-local
// emission state, and collects everything into one time-sorted record
// stream for the sinks. Also defines the RunManifest embedded in every
// trace header so a trace file is self-describing (what binary, what
// config, what seed produced it).

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "tw/trace/emit.hpp"

namespace tw::trace {

/// Provenance of a traced run, embedded in the trace header.
struct RunManifest {
  std::string tool = "tetriswrite";
  std::string version;      ///< library version (kVersionString)
  std::string git_sha;      ///< build-time git SHA ("unknown" outside git)
  std::string scheme;       ///< write scheme under test
  std::string workload;     ///< workload profile name
  std::string categories;   ///< enabled categories, comma-separated
  u64 config_hash = 0;      ///< field-mixing hash of the SystemConfig
  u64 seed = 0;
  std::vector<std::string> counter_names;  ///< kMetrics gauge index → name
};

/// The git SHA baked in at configure time (see root CMakeLists.txt).
const char* build_git_sha();

/// Owns rings and the attach/collect lifecycle. A Tracer outlives every
/// Attach scope it hands out; rings register under a mutex (cold path) but
/// emission itself never takes it.
class Tracer {
 public:
  explicit Tracer(u32 mask = kAllCategories,
                  u64 ring_capacity = TraceRing::kDefaultCapacity)
      : mask_(mask), ring_capacity_(ring_capacity) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  u32 mask() const { return mask_; }

  /// RAII scope: attaches the calling thread to this tracer for its
  /// lifetime. Nested attaches save/restore, so a traced region can run
  /// inside an untraced one (and vice versa).
  class Attach {
   public:
    explicit Attach(Tracer& t) : saved_(g_tls) {
      g_tls.ring = &t.ring_for_current_thread();
      g_tls.mask = t.mask_;
    }
    /// Attach the calling thread to a pre-created ring (see make_ring).
    /// The sharded engine uses this to bind each simulation domain to a
    /// deterministic ring regardless of which pool thread runs it.
    Attach(Tracer& t, TraceRing& ring) : saved_(g_tls) {
      g_tls.ring = &ring;
      g_tls.mask = t.mask_;
    }
    ~Attach() { g_tls = saved_; }
    Attach(const Attach&) = delete;
    Attach& operator=(const Attach&) = delete;

   private:
    ThreadState saved_;
  };

  /// Create (and own) a ring explicitly. Rings created this way are
  /// collected in creation order, so callers that pre-create one ring per
  /// simulation domain get a thread-count-independent record stream.
  TraceRing& make_ring() { return ring_for_current_thread(); }

  /// All surviving records from every ring, merged and stably sorted by
  /// tick. Call only when no attached thread is emitting.
  std::vector<TraceRecord> collect() const;

  /// Total records ever emitted / lost to wraparound, across rings.
  u64 total_pushed() const;
  u64 total_dropped() const;

 private:
  TraceRing& ring_for_current_thread();

  u32 mask_;
  u64 ring_capacity_;
  mutable std::mutex mu_;  // guards rings_ growth only
  std::vector<std::unique_ptr<TraceRing>> rings_;
};

}  // namespace tw::trace
