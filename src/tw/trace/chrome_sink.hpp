#pragma once
// Chrome trace_event JSON sink. Produces the "JSON Object Format" variant
// ({"traceEvents": [...], "metadata": {...}}) that chrome://tracing and
// Perfetto both load. Track domains become processes (banks, FSMs, cores,
// queues...), track indices become threads, so a loaded trace shows one
// swim lane per bank and per FSM.
//
// Timebase: simulated picoseconds are written as fractional microseconds
// (the trace_event "ts"/"dur" unit), so 430 ns Tset pulses render at
// 0.43 µs — real device scale, no fake clock.

#include <ostream>
#include <string>
#include <vector>

#include "tw/trace/tracer.hpp"

namespace tw::trace {

/// Stream the records (already time-sorted, as Tracer::collect returns
/// them) as one self-contained JSON document with the manifest embedded
/// under "metadata".
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceRecord>& records,
                        const RunManifest& manifest);

/// Convenience: write to `path`. Returns false if the file can't be
/// opened.
bool write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceRecord>& records,
                             const RunManifest& manifest);

}  // namespace tw::trace
