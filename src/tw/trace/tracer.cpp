#include "tw/trace/tracer.hpp"

#include <algorithm>
#include <cstring>

namespace tw::trace {

// TW_GIT_SHA is injected by the build (root CMakeLists.txt runs
// `git rev-parse --short HEAD` at configure time); fall back so tarball
// builds still produce valid manifests.
#ifndef TW_GIT_SHA
#define TW_GIT_SHA "unknown"
#endif

const char* build_git_sha() { return TW_GIT_SHA; }

const char* op_name(Op op) {
  switch (op) {
    case Op::kEventFire: return "event_fire";
    case Op::kFarMigrate: return "far_migrate";
    case Op::kReadEnqueue: return "read_enqueue";
    case Op::kWriteEnqueue: return "write_enqueue";
    case Op::kReadForward: return "read_forward";
    case Op::kWriteCoalesce: return "write_coalesce";
    case Op::kReadService: return "read_service";
    case Op::kWriteService: return "write_service";
    case Op::kBatchService: return "batch_service";
    case Op::kWriteComplete: return "write_complete";
    case Op::kDrainStart: return "drain_start";
    case Op::kDrainEnd: return "drain_end";
    case Op::kWritePause: return "write_pause";
    case Op::kWriteResume: return "write_resume";
    case Op::kGapMove: return "gap_move";
    case Op::kDispatch: return "dispatch";
    case Op::kSetPulse: return "set_pulse";
    case Op::kResetPulse: return "reset_pulse";
    case Op::kLineWrite: return "line_write";
    case Op::kWrite1Pack: return "write1_pack";
    case Op::kWrite0Steal: return "write0_steal";
    case Op::kWrite0Trail: return "write0_trail";
    case Op::kBatchPack: return "batch_pack";
    case Op::kCacheMiss: return "cache_miss";
    case Op::kCacheWriteback: return "cache_writeback";
    case Op::kGauge: return "gauge";
    case Op::kFaultRetry: return "fault_retry";
    case Op::kLineFailed: return "line_failed";
    case Op::kBrownoutWrite: return "brownout_write";
    case Op::kStuckRemap: return "stuck_remap";
    case Op::kPalpWriteSpan: return "palp_write_span";
    case Op::kPalpReadOverlap: return "palp_read_overlap";
    case Op::kPalpPumpStall: return "palp_pump_stall";
    case Op::kPalpWriteOverlap: return "palp_write_overlap";
    case Op::kPalpBatchSpread: return "palp_batch_spread";
    case Op::kDramHit: return "dram_hit";
    case Op::kDramMiss: return "dram_miss";
    case Op::kDramWriteback: return "dram_writeback";
    case Op::kDramCleanEvict: return "dram_clean_evict";
    case Op::kDramGroupEvict: return "dram_group_evict";
    case Op::kEncodeLine: return "encode_line";
  }
  return "unknown";
}

const char* category_name(Category c) {
  switch (c) {
    case Category::kKernel: return "kernel";
    case Category::kController: return "controller";
    case Category::kFsm: return "fsm";
    case Category::kPacker: return "packer";
    case Category::kCache: return "cache";
    case Category::kMetrics: return "metrics";
    case Category::kFault: return "fault";
    case Category::kPalp: return "palp";
    case Category::kDram: return "dram";
    case Category::kEncode: return "encode";
  }
  return "unknown";
}

const char* track_domain_name(Track t) {
  switch (t) {
    case Track::kKernel: return "kernel";
    case Track::kBank: return "bank";
    case Track::kSubarray: return "subarray";
    case Track::kFsm0: return "fsm0_reset";
    case Track::kFsm1: return "fsm1_set";
    case Track::kCore: return "core";
    case Track::kQueue: return "queue";
    case Track::kPacker: return "packer";
    case Track::kCache: return "cache";
    case Track::kMetrics: return "metrics";
    case Track::kFault: return "fault";
    case Track::kPalp: return "palp";
    case Track::kDram: return "dram";
    case Track::kEncode: return "encode";
  }
  return "unknown";
}

u32 parse_categories(const char* csv) {
  if (csv == nullptr || *csv == '\0') return kAllCategories;
  u32 mask = 0;
  const char* p = csv;
  while (*p != '\0') {
    const char* end = p;
    while (*end != '\0' && *end != ',') ++end;
    const std::size_t len = static_cast<std::size_t>(end - p);
    auto is = [&](const char* name) {
      return std::strlen(name) == len && std::strncmp(p, name, len) == 0;
    };
    if (is("all")) {
      mask |= kAllCategories;
    } else if (is("none")) {
      mask = 0;
    } else {
      for (u32 i = 0; i < kCategoryCount; ++i) {
        const auto c = static_cast<Category>(i);
        if (is(category_name(c))) mask |= category_bit(c);
      }
    }
    p = (*end == ',') ? end + 1 : end;
  }
  return mask;
}

void append_category_list(u32 mask, char* buf, unsigned long buf_size) {
  if (buf_size == 0) return;
  std::size_t pos = 0;
  buf[0] = '\0';
  for (u32 i = 0; i < kCategoryCount; ++i) {
    const auto c = static_cast<Category>(i);
    if ((mask & category_bit(c)) == 0) continue;
    const char* name = category_name(c);
    const std::size_t need = std::strlen(name) + (pos > 0 ? 1 : 0);
    if (pos + need + 1 > buf_size) break;
    if (pos > 0) buf[pos++] = ',';
    std::memcpy(buf + pos, name, std::strlen(name));
    pos += std::strlen(name);
    buf[pos] = '\0';
  }
}

TraceRing& Tracer::ring_for_current_thread() {
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<TraceRing>(ring_capacity_));
  return *rings_.back();
}

std::vector<TraceRecord> Tracer::collect() const {
  std::vector<TraceRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& r : rings_) r->collect(out);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.tick < b.tick;
                   });
  return out;
}

u64 Tracer::total_pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  u64 n = 0;
  for (const auto& r : rings_) n += r->pushed();
  return n;
}

u64 Tracer::total_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  u64 n = 0;
  for (const auto& r : rings_) n += r->dropped();
  return n;
}

}  // namespace tw::trace
