#pragma once
// Structured trace records: the fixed 32-byte unit of the observability
// layer. Every instrumented component (kernel, controller, write pipeline,
// cache) emits these into a per-thread ring (tw/trace/ring.hpp) through the
// thread-local emission state (tw/trace/emit.hpp); sinks turn collected
// records into Chrome trace_event JSON or metrics CSVs.
//
// Categories are a bitmask with two gates:
//  * compile time — TW_TRACE_COMPILED_MASK (default: everything). A
//    category compiled out folds its emission sites away entirely.
//  * runtime — the per-thread mask installed by Tracer::Attach. A category
//    compiled in but not enabled costs exactly one thread-local load and
//    one predicted-not-taken branch per emission site.

#include "tw/common/types.hpp"

namespace tw::trace {

/// Emission categories (bit positions in the category masks).
enum class Category : u8 {
  kKernel = 0,      ///< event kernel: dispatch, calendar-queue rotations
  kController = 1,  ///< memory controller: enqueue/issue/complete/drain
  kFsm = 2,         ///< write pipeline: SET/RESET pulse spans, line writes
  kPacker = 3,      ///< analysis stage: packing decisions, interspace steals
  kCache = 4,       ///< cache hierarchy: misses, writebacks
  kMetrics = 5,     ///< periodic metrics snapshots (counter tracks)
  kFault = 6,       ///< fault injection: retries, failed lines, brown-outs
  kPalp = 7,        ///< partition-level parallelism: occupancy, overlaps
  kDram = 8,        ///< DRAM front tier: hits, misses, writeback groups
  kEncode = 9,      ///< content-encoder pre-stage: coded units, tag pulses
};
inline constexpr u32 kCategoryCount = 10;

constexpr u32 category_bit(Category c) { return 1u << static_cast<u32>(c); }

/// All categories enabled.
inline constexpr u32 kAllCategories = (1u << kCategoryCount) - 1;

// Compile-time category mask: -DTW_TRACE_COMPILED_MASK=0 strips every
// emission site from the build (used to measure the hooks' cost).
#ifndef TW_TRACE_COMPILED_MASK
#define TW_TRACE_COMPILED_MASK 0xFFFFFFFFu
#endif
inline constexpr u32 kCompiledMask = TW_TRACE_COMPILED_MASK;

constexpr bool category_compiled(Category c) {
  return (kCompiledMask & category_bit(c)) != 0;
}

/// What a record represents (mirrors Chrome trace_event phases).
enum class Kind : u8 {
  kInstant = 0,  ///< a point event; args carry the payload
  kSpan = 1,     ///< a duration event: arg1 = duration in ticks
  kCounter = 2,  ///< a sampled value: arg0 = bit-cast double
};

/// The operation a record describes. One namespace across categories so a
/// record is self-describing without a per-category table.
enum class Op : u16 {
  // kKernel
  kEventFire = 0,    ///< one kernel event dispatched (arg0 = executed count)
  kFarMigrate = 1,   ///< calendar-queue window rotation (arg0 = migrated)
  // kController
  kReadEnqueue = 16,    ///< read accepted into the read queue
  kWriteEnqueue = 17,   ///< write accepted into the write queue
  kReadForward = 18,    ///< read served from queued write data
  kWriteCoalesce = 19,  ///< write merged into a queued same-line write
  kReadService = 20,    ///< span: read occupying its subarray
  kWriteService = 21,   ///< span: write occupying its bank
  kBatchService = 22,   ///< span: multi-line batched write on a bank
  kWriteComplete = 23,  ///< write left service (pause-split aware)
  kDrainStart = 24,     ///< controller entered write-drain mode
  kDrainEnd = 25,       ///< controller left write-drain mode
  kWritePause = 26,     ///< in-service write preempted at a unit boundary
  kWriteResume = 27,    ///< paused write resumed (arg1 = remaining ticks)
  kGapMove = 28,        ///< Start-Gap migration write (arg0 = region)
  kDispatch = 29,       ///< scheduling round (arg0 = read q, arg1 = write q)
  // kFsm
  kSetPulse = 32,    ///< span: FSM1 driving one data unit's SETs
  kResetPulse = 33,  ///< span: FSM0 driving one data unit's RESETs
  kLineWrite = 34,   ///< span: one full hardware-level line write
  // kPacker
  kWrite1Pack = 48,   ///< write-1 placed into a write unit
  kWrite0Steal = 49,  ///< write-0 stole an interspace sub-slot
  kWrite0Trail = 50,  ///< write-0 appended a trailing sub-slot
  kBatchPack = 51,    ///< multi-line joint pack (arg0 = lines,
                      ///< arg1 = occupancy in per-mille of budget)
  // kCache
  kCacheMiss = 64,       ///< missed every level: demand PCM read
  kCacheWriteback = 65,  ///< dirty line cascaded out to PCM
  // kMetrics
  kGauge = 80,  ///< one sampled gauge value (counter kind)
  // kFault
  kFaultRetry = 96,     ///< verify-and-retry ladder ran (arg0 = attempts,
                        ///< arg1 = extra service ticks)
  kLineFailed = 97,     ///< retries exhausted; line surfaced as FailedLine
  kBrownoutWrite = 98,  ///< write planned inside a brown-out window
                        ///< (arg0 = scaled budget, arg1 = nominal budget)
  kStuckRemap = 99,     ///< service redirected off a stuck bank
                        ///< (arg0 = stuck bank, arg1 = healthy target)
  // kPalp
  kPalpWriteSpan = 112,     ///< span: partition write drawing on the pump
                            ///< (arg0 = partition / batch spread)
  kPalpReadOverlap = 113,   ///< read admitted while the pump is loaded
                            ///< (arg0 = req id, arg1 = active writes)
  kPalpPumpStall = 114,     ///< read held back by the RWW cap
                            ///< (arg0 = rww reads, arg1 = active writes)
  kPalpWriteOverlap = 115,  ///< partition write started while another draws
                            ///< (arg0 = req id, arg1 = active writes)
  kPalpBatchSpread = 116,   ///< batch gathered under PALP (arg0 = lines,
                            ///< arg1 = distinct partitions)
  // kDram
  kDramHit = 128,         ///< request absorbed by the tier (arg0 = line,
                          ///< arg1 = 1 for writes)
  kDramMiss = 129,        ///< tier miss (arg0 = line, arg1 = 1 for writes)
  kDramWriteback = 130,   ///< dirty victim queued toward PCM (arg0 = line)
  kDramCleanEvict = 131,  ///< clean victim dropped, no PCM traffic
                          ///< (arg0 = line)
  kDramGroupEvict = 132,  ///< MAC same-bank dirty group written back
                          ///< (arg0 = lines, arg1 = flat PCM bank)
  // kEncode
  kEncodeLine = 144,  ///< encoder pre-stage transformed a line write
                      ///< (arg0 = units stored coded, arg1 = tag pulses)
};

/// Visualization track domains (Chrome pid); the low 24 bits of a track id
/// select the instance (Chrome tid).
enum class Track : u8 {
  kKernel = 0,
  kBank = 1,
  kSubarray = 2,
  kFsm0 = 3,
  kFsm1 = 4,
  kCore = 5,
  kQueue = 6,  ///< 0 = read queue, 1 = write queue
  kPacker = 7,
  kCache = 8,
  kMetrics = 9,
  kFault = 10,
  kPalp = 11,  ///< per-bank pump occupancy (PALP)
  kDram = 12,    ///< per-channel DRAM front tier activity
  kEncode = 13,  ///< per-bank encoder pre-stage activity
};
inline constexpr u32 kTrackDomains = 14;

constexpr u32 track_id(Track domain, u32 index) {
  return (static_cast<u32>(domain) << 24) | (index & 0x00FFFFFFu);
}
constexpr Track track_domain(u32 id) { return static_cast<Track>(id >> 24); }
constexpr u32 track_index(u32 id) { return id & 0x00FFFFFFu; }

/// One trace record. Exactly 32 bytes so a ring slot is two cache lines of
/// sixteen records and wrap arithmetic is a shift.
struct TraceRecord {
  Tick tick = 0;  ///< absolute simulated time (ps)
  u64 arg0 = 0;   ///< op-specific payload
  u64 arg1 = 0;   ///< op-specific payload; duration (ticks) for kSpan
  u32 track = 0;  ///< visualization track (see track_id)
  Op op = Op::kEventFire;
  Category category = Category::kKernel;
  Kind kind = Kind::kInstant;
};
static_assert(sizeof(TraceRecord) == 32);

/// Stable short name of an operation (Chrome event name).
const char* op_name(Op op);
/// Stable short name of a category (Chrome "cat" field; CLI spelling).
const char* category_name(Category c);
/// Stable name of a track domain (Chrome process name).
const char* track_domain_name(Track t);

/// Parse a comma-separated category list ("controller,fsm", "all",
/// "none") into a mask. Unknown names are ignored; returns kAllCategories
/// for an empty string.
u32 parse_categories(const char* csv);
/// Render a mask back to the comma-separated spelling.
// (Defined in tracer.cpp with the other string tables.)
void append_category_list(u32 mask, char* buf, unsigned long buf_size);

}  // namespace tw::trace
