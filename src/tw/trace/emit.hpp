#pragma once
// Thread-local emission state and the emit() hot path. Header-only and
// dependency-free (beyond record/ring) so any module can emit without
// linking against tw_trace: instrumented code includes this header, tests
// the category gate with `on<C>()`, and pushes records; the Tracer
// (tw/trace/tracer.hpp) installs/collects the per-thread state.
//
// Cost model: with a category compiled out, `if (on<C>())` folds to
// `if (false)` and the emission site vanishes. Compiled in but not
// enabled at runtime, the site costs one thread-local mask load and one
// predicted-not-taken branch. Enabled, a push is one 32-byte store plus
// an increment into the thread's private ring — no locks, no atomics, no
// allocation.

#include "tw/trace/record.hpp"
#include "tw/trace/ring.hpp"

namespace tw::trace {

/// Per-thread tracing state. `ring == nullptr` (the default) means the
/// thread is not attached and every runtime gate is off regardless of the
/// mask.
struct ThreadState {
  TraceRing* ring = nullptr;
  u32 mask = 0;  ///< runtime category mask (valid only when attached)
  // Context for emitters that have no Simulator reference (packer, FSM
  // schedule expansion, cache): absolute time base and track of the
  // enclosing operation, installed by ScopedContext.
  Tick base = 0;
  u32 track = 0;
};

inline thread_local ThreadState g_tls;

/// Runtime + compile-time category gate. Usage:
///   if (on<Category::kFsm>()) { ... build and emit records ... }
template <Category C>
inline bool on() {
  if constexpr (!category_compiled(C)) return false;
  return (g_tls.mask & category_bit(C)) != 0 && g_tls.ring != nullptr;
}

/// Runtime-category variant for data-driven emitters (sinks, snapshots).
inline bool on(Category c) {
  return category_compiled(c) && (g_tls.mask & category_bit(c)) != 0 &&
         g_tls.ring != nullptr;
}

/// Push one record. Callers must have passed the `on()` gate.
inline void emit(const TraceRecord& r) { g_tls.ring->push(r); }

inline void emit_instant(Category c, Op op, u32 track, Tick tick,
                         u64 arg0 = 0, u64 arg1 = 0) {
  emit(TraceRecord{tick, arg0, arg1, track, op, c, Kind::kInstant});
}

inline void emit_span(Category c, Op op, u32 track, Tick start, Tick duration,
                      u64 arg0 = 0) {
  emit(TraceRecord{start, arg0, duration, track, op, c, Kind::kSpan});
}

inline void emit_counter(Category c, Op op, u32 track, Tick tick,
                         double value, u64 arg1 = 0) {
  u64 bits;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  emit(TraceRecord{tick, bits, arg1, track, op, c, Kind::kCounter});
}

/// Reinterpret a counter record's payload.
inline double counter_value(const TraceRecord& r) {
  double v;
  __builtin_memcpy(&v, &r.arg0, sizeof(v));
  return v;
}

/// Installs a time base + track for downstream emitters that only know
/// relative ticks (FSM pulse schedules, packer decisions). Cheap enough to
/// construct unconditionally: two thread-local stores each way.
class ScopedContext {
 public:
  ScopedContext(Tick base, u32 track)
      : saved_base_(g_tls.base), saved_track_(g_tls.track) {
    g_tls.base = base;
    g_tls.track = track;
  }
  ~ScopedContext() {
    g_tls.base = saved_base_;
    g_tls.track = saved_track_;
  }
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  Tick saved_base_;
  u32 saved_track_;
};

}  // namespace tw::trace
