#pragma once
// Fixed-capacity record ring. Each tracing thread owns exactly one ring
// (single producer); the Tracer drains rings only at collection points
// (between parallel regions or at end of run), so no push/drain race
// exists by construction and pushes are plain stores — no atomics on the
// hot path. When the ring fills it wraps, overwriting the oldest records:
// tracing a long run keeps the most recent window instead of failing, and
// `dropped()` reports how much history was lost.

#include <cstring>
#include <vector>

#include "tw/common/assert.hpp"
#include "tw/trace/record.hpp"

namespace tw::trace {

class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 16) so the wrap
  /// is a mask, not a divide.
  explicit TraceRing(u64 capacity = kDefaultCapacity) {
    u64 cap = 16;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  static constexpr u64 kDefaultCapacity = 1u << 20;  // 32 MiB of records

  void push(const TraceRecord& r) {
    slots_[head_ & mask_] = r;
    ++head_;
  }

  u64 capacity() const { return mask_ + 1; }
  /// Total records ever pushed (monotonic, survives wraparound).
  u64 pushed() const { return head_; }
  /// Records overwritten by wraparound.
  u64 dropped() const { return head_ > capacity() ? head_ - capacity() : 0; }
  /// Records currently held.
  u64 size() const { return head_ - dropped(); }

  /// Copy the surviving records, oldest first, into `out` (appending).
  void collect(std::vector<TraceRecord>& out) const {
    u64 n = size();
    u64 first = head_ - n;  // oldest surviving sequence number
    out.reserve(out.size() + n);
    for (u64 i = 0; i < n; ++i) out.push_back(slots_[(first + i) & mask_]);
  }

  void clear() { head_ = 0; }

 private:
  std::vector<TraceRecord> slots_;
  u64 mask_ = 0;
  u64 head_ = 0;  // next write position; monotonic
};

}  // namespace tw::trace
