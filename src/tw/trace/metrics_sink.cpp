#include "tw/trace/metrics_sink.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace tw::trace {

u32 MetricsSnapshotter::add_gauge(std::string name,
                                  std::function<double()> fn) {
  const u32 idx = static_cast<u32>(gauges_.size());
  accs_.push_back(&reg_.accumulator("trace." + name));
  names_.push_back(std::move(name));
  gauges_.push_back(std::move(fn));
  return idx;
}

void MetricsSnapshotter::sample() {
  const Tick now = sim_.now();
  for (u32 i = 0; i < gauges_.size(); ++i) {
    const double v = gauges_[i]();
    accs_[i]->add(v);
    if (on(Category::kMetrics)) {
      emit_counter(Category::kMetrics, Op::kGauge,
                   track_id(Track::kMetrics, i), now, v);
    }
  }
  ++samples_;
}

void MetricsSnapshotter::start() { arm(); }

void MetricsSnapshotter::arm() {
  sim_.schedule_in(
      epoch_,
      [this] {
        sample();
        // Re-arm only while the system is still doing work; the sampling
        // event itself must not keep the simulation alive.
        if (sim_.pending() > 0) arm();
      },
      sim::Priority::kDefault);
}

void write_metrics_csv(std::ostream& out,
                       const std::vector<TraceRecord>& records,
                       const RunManifest& manifest) {
  out << "time_ns,name,value\n";
  char buf[96];
  for (const auto& r : records) {
    if (r.kind != Kind::kCounter) continue;
    const u32 idx = track_index(r.track);
    const char* name = idx < manifest.counter_names.size()
                           ? manifest.counter_names[idx].c_str()
                           : op_name(r.op);
    std::snprintf(buf, sizeof(buf), "%.3f,", to_ns(r.tick));
    out << buf << name;
    std::snprintf(buf, sizeof(buf), ",%.17g\n", counter_value(r));
    out << buf;
  }
}

bool write_metrics_csv_file(const std::string& path,
                            const std::vector<TraceRecord>& records,
                            const RunManifest& manifest) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  write_metrics_csv(out, records, manifest);
  return out.good();
}

}  // namespace tw::trace
