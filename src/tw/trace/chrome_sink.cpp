#include "tw/trace/chrome_sink.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <set>
#include <utility>

namespace tw::trace {
namespace {

// Picoseconds → trace_event microseconds, printed with full pico
// precision so same-seed runs serialize byte-identically.
void append_ts(std::string& s, Tick t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%06u",
                t / 1'000'000, static_cast<unsigned>(t % 1'000'000));
  s += buf;
}

void append_u64(std::string& s, u64 v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  s += buf;
}

void append_double(std::string& s, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  s += buf;
}

void append_json_string(std::string& s, const std::string& v) {
  s += '"';
  for (char c : v) {
    switch (c) {
      case '"': s += "\\\""; break;
      case '\\': s += "\\\\"; break;
      case '\n': s += "\\n"; break;
      case '\t': s += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          s += buf;
        } else {
          s += c;
        }
    }
  }
  s += '"';
}

void append_pid_tid(std::string& s, u32 track) {
  s += "\"pid\":";
  append_u64(s, static_cast<u32>(track_domain(track)));
  s += ",\"tid\":";
  append_u64(s, track_index(track));
}

// The event name shown in the UI: gauges use their registered metric
// name (from the manifest) so counters chart under meaningful labels.
const char* record_name(const TraceRecord& r, const RunManifest& m) {
  if (r.op == Op::kGauge) {
    const u32 idx = track_index(r.track);
    if (idx < m.counter_names.size()) return m.counter_names[idx].c_str();
  }
  return op_name(r.op);
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceRecord>& records,
                        const RunManifest& manifest) {
  std::string s;
  s.reserve(1u << 20);
  s += "{\"traceEvents\":[\n";

  // Metadata events first: name every (process, thread) pair that appears
  // so Perfetto shows "bank 3" instead of a bare tid.
  std::set<u32> pids;
  std::set<u32> tracks;
  for (const auto& r : records) {
    pids.insert(static_cast<u32>(track_domain(r.track)));
    tracks.insert(r.track);
  }
  bool first = true;
  auto sep = [&] {
    if (!first) s += ",\n";
    first = false;
  };
  for (u32 pid : pids) {
    sep();
    s += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    append_u64(s, pid);
    s += ",\"args\":{\"name\":";
    append_json_string(s, track_domain_name(static_cast<Track>(pid)));
    s += "}}";
  }
  for (u32 track : tracks) {
    sep();
    s += "{\"name\":\"thread_name\",\"ph\":\"M\",";
    append_pid_tid(s, track);
    s += ",\"args\":{\"name\":";
    std::string tname = track_domain_name(track_domain(track));
    tname += ' ';
    char idx[16];
    std::snprintf(idx, sizeof(idx), "%u", track_index(track));
    tname += idx;
    append_json_string(s, tname);
    s += "}}";
  }

  for (const auto& r : records) {
    sep();
    s += "{\"name\":";
    append_json_string(s, record_name(r, manifest));
    s += ",\"cat\":";
    append_json_string(s, category_name(r.category));
    s += ",";
    switch (r.kind) {
      case Kind::kSpan:
        s += "\"ph\":\"X\",\"ts\":";
        append_ts(s, r.tick);
        s += ",\"dur\":";
        append_ts(s, r.arg1);
        s += ",";
        append_pid_tid(s, r.track);
        s += ",\"args\":{\"arg0\":";
        append_u64(s, r.arg0);
        s += "}";
        break;
      case Kind::kInstant:
        s += "\"ph\":\"i\",\"s\":\"t\",\"ts\":";
        append_ts(s, r.tick);
        s += ",";
        append_pid_tid(s, r.track);
        s += ",\"args\":{\"arg0\":";
        append_u64(s, r.arg0);
        s += ",\"arg1\":";
        append_u64(s, r.arg1);
        s += "}";
        break;
      case Kind::kCounter:
        s += "\"ph\":\"C\",\"ts\":";
        append_ts(s, r.tick);
        s += ",";
        append_pid_tid(s, r.track);
        s += ",\"args\":{\"value\":";
        append_double(s, counter_value(r));
        s += "}";
        break;
    }
    s += "}";
    if (s.size() >= (1u << 20)) {
      out << s;
      s.clear();
    }
  }

  s += "\n],\"displayTimeUnit\":\"ns\",\"metadata\":{";
  s += "\"tool\":";
  append_json_string(s, manifest.tool);
  s += ",\"version\":";
  append_json_string(s, manifest.version);
  s += ",\"git_sha\":";
  append_json_string(s, manifest.git_sha);
  s += ",\"scheme\":";
  append_json_string(s, manifest.scheme);
  s += ",\"workload\":";
  append_json_string(s, manifest.workload);
  s += ",\"categories\":";
  append_json_string(s, manifest.categories);
  s += ",\"config_hash\":\"";
  char hex[24];
  std::snprintf(hex, sizeof(hex), "%016" PRIx64, manifest.config_hash);
  s += hex;
  s += "\",\"seed\":";
  append_u64(s, manifest.seed);
  s += ",\"counter_names\":[";
  for (std::size_t i = 0; i < manifest.counter_names.size(); ++i) {
    if (i > 0) s += ',';
    append_json_string(s, manifest.counter_names[i]);
  }
  s += "]}}\n";
  out << s;
}

bool write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceRecord>& records,
                             const RunManifest& manifest) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  write_chrome_trace(out, records, manifest);
  return out.good();
}

}  // namespace tw::trace
