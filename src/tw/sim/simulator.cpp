#include "tw/sim/simulator.hpp"

#include <utility>

namespace tw::sim {

void Simulator::schedule_at(Tick at, Callback fn, Priority prio) {
  TW_EXPECTS(at >= now_);
  TW_EXPECTS(fn != nullptr);
  queue_.push(Event{at, static_cast<u8>(prio), seq_++, std::move(fn)});
}

u64 Simulator::run(Tick limit) {
  u64 n = 0;
  while (!queue_.empty() && queue_.top().tick <= limit) {
    // Copy out before pop so the callback can schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    TW_ASSERT(ev.tick >= now_);
    now_ = ev.tick;
    ++executed_;
    ++n;
    if (observer_) observer_(now_, executed_);
    ev.fn();
  }
  // Advance the clock to the limit: everything left is strictly later.
  if (limit != kTickMax && now_ < limit) now_ = limit;
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  TW_ASSERT(ev.tick >= now_);
  now_ = ev.tick;
  ++executed_;
  if (observer_) observer_(now_, executed_);
  ev.fn();
  return true;
}

void Simulator::clear() {
  queue_ = {};
}

}  // namespace tw::sim
