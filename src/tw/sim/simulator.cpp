#include "tw/sim/simulator.hpp"

#include <utility>

#include "tw/trace/emit.hpp"

namespace tw::sim {

Simulator::~Simulator() = default;  // chunks_ owns every node

Simulator::EventNode* Simulator::alloc_node() {
  if (free_ == nullptr) {
    auto chunk = std::make_unique<EventNode[]>(kChunkNodes);
    for (u32 i = 0; i < kChunkNodes; ++i) {
      chunk[i].next = free_;
      free_ = &chunk[i];
    }
    chunks_.push_back(std::move(chunk));
  }
  EventNode* n = free_;
  free_ = n->next;
  return n;
}

void Simulator::free_node(EventNode* n) {
  n->fn.reset();  // release captures now, not when the node is reused
  n->next = free_;
  free_ = n;
}

void Simulator::bucket_insert(EventNode* n, u32 b) {
  n->next = buckets_[b];
  buckets_[b] = n;
  bucket_bits_[b >> 6] |= u64{1} << (b & 63);
}

void Simulator::insert(EventNode* n) {
  const u64 day = day_of(n->tick);
  if (day < wheel_base_day_ + kNumBuckets) {
    // In the wheel window. day >= wheel_base_day_ holds because the base
    // never passes day_of(now) (see migrate_far), and ticks are >= now.
    bucket_insert(n, static_cast<u32>(day) & kBucketMask);
    min_day_hint_ = std::min(min_day_hint_, day);
  } else {
    n->next = far_;
    far_ = n;
    far_min_tick_ = std::min(far_min_tick_, n->tick);
  }
}

u32 Simulator::find_set_offset(u32 start, u32 span) const {
  u32 off = 0;
  while (off < span) {
    const u32 idx = (start + off) & kBucketMask;
    const u32 bit = idx & 63;
    const u64 w = bucket_bits_[idx >> 6] >> bit;
    const u32 avail = std::min(64 - bit, span - off);
    if (w != 0) {
      const u32 tz = static_cast<u32>(std::countr_zero(w));
      if (tz < avail) return off + tz;
    }
    off += avail;
  }
  return span;
}

void Simulator::migrate_far() {
  // Slide the window to start at the earliest far event; everything now
  // inside moves to buckets, the rest stays far with a recomputed min.
  const u64 base = day_of(far_min_tick_);
  wheel_base_day_ = base;
  min_day_hint_ = base;
  EventNode* n = far_;
  far_ = nullptr;
  far_min_tick_ = kTickMax;
  u64 migrated = 0;
  u64 kept_far = 0;
  while (n != nullptr) {
    EventNode* next = n->next;
    const u64 day = day_of(n->tick);
    if (day < base + kNumBuckets) {
      bucket_insert(n, static_cast<u32>(day) & kBucketMask);
      ++migrated;
    } else {
      n->next = far_;
      far_ = n;
      far_min_tick_ = std::min(far_min_tick_, n->tick);
      ++kept_far;
    }
    n = next;
  }
  if (trace::on<trace::Category::kKernel>()) {
    trace::emit_instant(trace::Category::kKernel, trace::Op::kFarMigrate,
                        trace::track_id(trace::Track::kKernel, 0), now_,
                        migrated, kept_far);
  }
}

Simulator::EventNode* Simulator::pop_earliest(Tick limit) {
  for (;;) {
    // The earliest pending wheel event lives in the first nonempty bucket
    // at or after the min-day cursor (buckets ahead of the base wrap to
    // future days and are scanned in window order, so bucket index ==
    // day order). The cursor keeps the bitmap scan O(1) amortized: it
    // only moves forward as events fire, never rescans drained buckets.
    const u64 scan_day = std::max({min_day_hint_, day_of(now_),
                                   wheel_base_day_});
    const u64 end_day = wheel_base_day_ + kNumBuckets;
    if (scan_day < end_day) {
      const u32 span = static_cast<u32>(end_day - scan_day);
      const u32 off =
          find_set_offset(static_cast<u32>(scan_day) & kBucketMask, span);
      if (off != span) {
        min_day_hint_ = scan_day + off;
        const u32 b = static_cast<u32>(scan_day + off) & kBucketMask;
        // All nodes in a bucket share a day; pick the (tick, order) min.
        EventNode* best_prev = nullptr;
        EventNode* best = buckets_[b];
        EventNode* prev = buckets_[b];
        for (EventNode* n = best->next; n != nullptr; n = n->next) {
          if (n->tick < best->tick ||
              (n->tick == best->tick && n->order < best->order)) {
            best = n;
            best_prev = prev;
          }
          prev = n;
        }
        if (best->tick > limit) return nullptr;
        if (best_prev == nullptr) {
          buckets_[b] = best->next;
        } else {
          best_prev->next = best->next;
        }
        if (buckets_[b] == nullptr) {
          bucket_bits_[b >> 6] &= ~(u64{1} << (b & 63));
        }
        --pending_;
        return best;
      }
    }
    // Wheel dry: pull the far list in — but only when its earliest event
    // is due, so the window base never jumps past an event that would
    // then be scheduled "behind" it.
    if (far_ == nullptr || far_min_tick_ > limit) return nullptr;
    migrate_far();
  }
}

Tick Simulator::next_tick() const {
  Tick best = far_min_tick_;
  const u64 scan_day = std::max({min_day_hint_, day_of(now_),
                                 wheel_base_day_});
  const u64 end_day = wheel_base_day_ + kNumBuckets;
  if (scan_day < end_day) {
    const u32 span = static_cast<u32>(end_day - scan_day);
    const u32 off =
        find_set_offset(static_cast<u32>(scan_day) & kBucketMask, span);
    if (off != span) {
      const u32 b = static_cast<u32>(scan_day + off) & kBucketMask;
      // All nodes in the bucket share a day; the wheel event minimum is
      // this bucket's tick minimum (earlier buckets are empty).
      Tick bucket_min = kTickMax;
      for (const EventNode* n = buckets_[b]; n != nullptr; n = n->next) {
        bucket_min = std::min(bucket_min, n->tick);
      }
      best = std::min(best, bucket_min);
    }
  }
  return best;
}

void Simulator::fire(EventNode* n) {
  TW_ASSERT(n->tick >= now_);
  now_ = n->tick;
  ++executed_;
  if (observer_) observer_(now_, executed_);
  if (trace::on<trace::Category::kKernel>()) {
    // arg0 = running executed count, arg1 = the event's priority lane.
    trace::emit_instant(trace::Category::kKernel, trace::Op::kEventFire,
                        trace::track_id(trace::Track::kKernel, 0), now_,
                        executed_, n->order >> 56);
  }
  n->fn();  // may schedule further events; n is already unlinked
  free_node(n);
}

void Simulator::schedule_at(Tick at, Callback fn, Priority prio) {
  TW_EXPECTS(at >= now_);
  TW_EXPECTS(fn != nullptr);
  EventNode* n = alloc_node();
  n->tick = at;
  n->order = (static_cast<u64>(prio) << 56) | seq_++;
  n->fn = std::move(fn);
  insert(n);
  ++pending_;
}

u64 Simulator::run(Tick limit) {
  u64 fired = 0;
  while (EventNode* n = pop_earliest(limit)) {
    fire(n);
    ++fired;
  }
  // Advance the clock to the limit: everything left is strictly later.
  if (limit != kTickMax && now_ < limit) now_ = limit;
  return fired;
}

bool Simulator::step() {
  EventNode* n = pop_earliest(kTickMax);
  if (n == nullptr) return false;
  fire(n);
  return true;
}

void Simulator::clear() {
  for (u32 b = 0; b < kNumBuckets; ++b) {
    EventNode* n = buckets_[b];
    buckets_[b] = nullptr;
    while (n != nullptr) {
      EventNode* next = n->next;
      free_node(n);
      n = next;
    }
  }
  bucket_bits_.fill(0);
  EventNode* n = far_;
  far_ = nullptr;
  far_min_tick_ = kTickMax;
  while (n != nullptr) {
    EventNode* next = n->next;
    free_node(n);
    n = next;
  }
  pending_ = 0;
  wheel_base_day_ = day_of(now_);
  min_day_hint_ = wheel_base_day_;
}

}  // namespace tw::sim
