#include "tw/sim/sharded.hpp"

#include <algorithm>

#include "tw/common/parallel.hpp"

namespace tw::sim {

void ShardedEngine::run_domain(u32 di, Tick limit) {
  Domain& d = domains_[di];
  // Install the domain's ring for the duration of the quantum so records
  // land deterministically regardless of which pool thread runs it. An
  // unbound domain emits nothing (ring == nullptr gates every category).
  const trace::ThreadState saved = trace::g_tls;
  trace::g_tls.ring = d.ring;
  trace::g_tls.mask = d.ring != nullptr ? d.mask : 0;
  d.sim->run(limit);
  trace::g_tls = saved;
}

void ShardedEngine::fire_message(u32 dst, u32 slot) {
  Domain& d = domains_[dst];
  Message msg = std::move(d.inbox[slot]);
  d.free_slots.push_back(slot);
  msg();
}

void ShardedEngine::deliver(Pending& p) {
  Domain& d = domains_[p.dst];
  u32 slot;
  if (!d.free_slots.empty()) {
    slot = d.free_slots.back();
    d.free_slots.pop_back();
    d.inbox[slot] = std::move(p.msg);
  } else {
    slot = static_cast<u32>(d.inbox.size());
    d.inbox.push_back(std::move(p.msg));
  }
  ShardedEngine* self = this;
  const u32 dst = p.dst;
  d.sim->schedule_at(
      p.fire, [self, dst, slot] { self->fire_message(dst, slot); }, p.prio);
}

u64 ShardedEngine::run(Tick limit) {
  const u64 before = executed_total();
  const u32 n = static_cast<u32>(domains_.size());
  for (;;) {
    // Deliver messages posted from outside any window (e.g. front-side
    // enqueues made between run() calls) so the peek below can see them.
    // Mid-loop this is a no-op: phase 3 already drained every outbox.
    for (u32 s = 0; s < n; ++s) {
      for (Pending& p : domains_[s].outbox) deliver(p);
      domains_[s].outbox.clear();
    }
    // Fast-forward to the earliest pending event anywhere, then run the
    // aligned window containing it. Idle stretches cost one peek, not a
    // quantum-by-quantum crawl.
    Tick next = kTickMax;
    for (const auto& d : domains_) {
      next = std::min(next, d.sim->next_tick());
    }
    if (next == kTickMax || next > limit) break;
    const Tick wstart = next / quantum_ * quantum_;
    Tick wend = wstart + quantum_ - 1;
    if (wend > limit) wend = limit;

    // Phase 1: the front domain, serially on the calling thread.
    run_domain(0, wend);
    // Phase 2: channel domains, concurrently. The pool barrier inside
    // parallel_for orders these writes before the drain below.
    if (n > 1) {
      parallel_for(
          n - 1, [&](std::size_t i) { run_domain(static_cast<u32>(i) + 1, wend); },
          threads_);
    }
    // Phase 3: serial barrier. Outboxes drain in fixed source order, so
    // destination sequence numbers are identical at every thread count.
    // Every fire tick is >= wstart + quantum > wend, hence >= dst.now().
    for (u32 s = 0; s < n; ++s) {
      for (Pending& p : domains_[s].outbox) deliver(p);
      domains_[s].outbox.clear();
    }
  }
  // Advance every clock to the limit (fires nothing: all remaining
  // events are strictly later).
  if (limit != kTickMax) {
    for (u32 d = 0; d < n; ++d) run_domain(d, limit);
  }
  return executed_total() - before;
}

}  // namespace tw::sim
