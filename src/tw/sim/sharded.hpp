#pragma once
// Sharded event loop: several Simulator instances ("domains") advance in
// lockstep through aligned time-quanta, with cross-domain interaction
// carried by latency-Q messages. Domain 0 is the serial front (CPU cores,
// caches, the XBar routing logic); domains 1..C are the per-channel
// memory controllers and run concurrently on the shared ThreadPool.
//
// Determinism argument (conservative parallel DES with lookahead):
// the quantum width equals the XBar latency Q. A message posted while
// its source executes window [W, W+Q) fires at send_tick + Q, which is
// always >= W+Q — strictly beyond the window — so nothing a domain does
// inside a window can affect any other domain in the same window. The
// execution order of domains within a window is therefore irrelevant,
// and the serial barrier drains outboxes in fixed source order (0..C),
// assigning destination-simulator sequence numbers identically at every
// thread count. Same seed => bit-identical events, metrics and traces.
//
// Trace binding: each domain can be bound to a pre-created TraceRing;
// the engine installs it into the thread-local emission state around the
// domain's quantum, so records land in the same ring no matter which
// pool thread ran the domain (rings are collected in creation order,
// keeping trace bytes thread-count-independent).

#include <vector>

#include "tw/common/inline_function.hpp"
#include "tw/common/types.hpp"
#include "tw/sim/simulator.hpp"
#include "tw/trace/emit.hpp"

namespace tw::sim {

class ShardedEngine {
 public:
  /// Cross-domain message payload. Heap capture is allowed (a routed
  /// MemoryRequest exceeds the simulator's inline budget); the simulator
  /// event itself only captures {engine, domain, slot}.
  using Message = BasicInlineFunction<64, true>;

  /// quantum: window width in ticks == modeled XBar latency (>= 1).
  /// threads: cap on pool threads for the channel phase (0 = all).
  ShardedEngine(Tick quantum, u32 threads)
      : quantum_(quantum == 0 ? 1 : quantum), threads_(threads) {}
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Register a domain (0 = front, then one per channel, in order).
  /// The simulator must outlive the engine. Returns the domain index.
  u32 add_domain(Simulator& sim) {
    Domain d;
    d.sim = &sim;
    domains_.push_back(std::move(d));
    return static_cast<u32>(domains_.size() - 1);
  }

  /// Bind a domain's trace emission to `ring` under category `mask`
  /// (nullptr = domain emits nothing). Call before run().
  void bind_trace(u32 domain, trace::TraceRing* ring, u32 mask) {
    domains_[domain].ring = ring;
    domains_[domain].mask = mask;
  }

  /// Post a message from domain `src` to domain `dst`; it executes as a
  /// dst event at src.now() + quantum with priority `prio`. Must only be
  /// called from code running inside domain `src` (its outbox is
  /// domain-private during the window).
  void post(u32 src, u32 dst, Priority prio, Message msg) {
    domains_[src].outbox.push_back(
        Pending{dst, domains_[src].sim->now() + quantum_, prio,
                std::move(msg)});
  }

  /// Advance every domain to `limit` (window-by-window). Returns the
  /// number of events executed across all domains by this call.
  u64 run(Tick limit);

  Tick quantum() const { return quantum_; }
  u32 domain_count() const { return static_cast<u32>(domains_.size()); }

  /// Total events executed across all domains since construction.
  u64 executed_total() const {
    u64 n = 0;
    for (const auto& d : domains_) n += d.sim->executed();
    return n;
  }

 private:
  struct Pending {
    u32 dst;
    Tick fire;
    Priority prio;
    Message msg;
  };
  struct Domain {
    Simulator* sim = nullptr;
    trace::TraceRing* ring = nullptr;
    u32 mask = 0;
    std::vector<Message> inbox;     ///< parked messages, indexed by slot
    std::vector<u32> free_slots;    ///< recycled inbox slots
    std::vector<Pending> outbox;    ///< messages sent this window
  };

  void run_domain(u32 d, Tick limit);
  void deliver(Pending& p);
  void fire_message(u32 dst, u32 slot);

  std::vector<Domain> domains_;
  Tick quantum_;
  u32 threads_;
};

}  // namespace tw::sim
