#pragma once
// Event-driven simulation kernel (the NVMain/gem5 stand-in's heart).
//
// Deterministic: events at the same tick fire in (priority, insertion order)
// sequence. Callbacks may schedule further events. Single-threaded by
// design — cross-experiment parallelism happens at the harness level.

#include <cstddef>
#include <functional>
#include <queue>
#include <vector>

#include "tw/common/assert.hpp"
#include "tw/common/types.hpp"

namespace tw::sim {

/// Scheduling priority for events at the same tick; lower runs first.
enum class Priority : u8 {
  kDeviceComplete = 0,  ///< device/bank completions
  kController = 1,      ///< memory-controller scheduling decisions
  kCpu = 2,             ///< CPU progress
  kDefault = 3,
};

/// Discrete-event simulator with a monotonically advancing clock.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Invoked immediately before each event's callback runs, with the
  /// event's tick and the running executed-event count. Used by the
  /// verify subsystem's InvariantMonitor (time-monotonicity checking,
  /// per-event invariant hooks) and by tracing tools.
  using Observer = std::function<void(Tick now, u64 executed)>;

  /// Install (or clear, with nullptr) the per-event observer.
  void set_observer(Observer obs) { observer_ = std::move(obs); }

  /// Current simulated time.
  Tick now() const { return now_; }

  /// Schedule `fn` at absolute tick `at` (must be >= now()).
  void schedule_at(Tick at, Callback fn,
                   Priority prio = Priority::kDefault);

  /// Schedule `fn` after `delay` ticks from now.
  void schedule_in(Tick delay, Callback fn,
                   Priority prio = Priority::kDefault) {
    schedule_at(now_ + delay, std::move(fn), prio);
  }

  /// Run until the event queue is empty or `limit` is reached.
  /// Returns the number of events executed.
  u64 run(Tick limit = kTickMax);

  /// Execute exactly one event (if any). Returns false when queue empty.
  bool step();

  /// Number of pending events.
  std::size_t pending() const { return queue_.size(); }

  /// Total events executed so far.
  u64 executed() const { return executed_; }

  /// Drop all pending events (used by tests).
  void clear();

 private:
  struct Event {
    Tick tick;
    u8 prio;
    u64 seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.tick != b.tick) return a.tick > b.tick;
      if (a.prio != b.prio) return a.prio > b.prio;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Tick now_ = 0;
  u64 seq_ = 0;
  u64 executed_ = 0;
  Observer observer_;
};

/// A fixed-frequency clock domain layered on the picosecond timebase.
class Clock {
 public:
  /// period: ticks per cycle (e.g. 500 ps for a 2 GHz core).
  explicit constexpr Clock(Tick period) : period_(period) {
    // A zero period would make cycle arithmetic divide by zero.
  }

  constexpr Tick period() const { return period_; }
  constexpr double freq_ghz() const {
    return 1000.0 / static_cast<double>(period_);
  }

  /// Cycles elapsed at tick t (floor).
  constexpr u64 cycles_at(Tick t) const { return t / period_; }

  /// Tick of the start of cycle c.
  constexpr Tick tick_of(u64 cycle) const { return cycle * period_; }

  /// Ticks for n cycles.
  constexpr Tick cycles(u64 n) const { return n * period_; }

  /// The first clock edge at or after tick t.
  constexpr Tick next_edge(Tick t) const {
    return ceil_div(t, period_) * period_;
  }

 private:
  Tick period_;
};

}  // namespace tw::sim
