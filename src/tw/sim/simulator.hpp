#pragma once
// Event-driven simulation kernel (the NVMain/gem5 stand-in's heart).
//
// Deterministic: events at the same tick fire in (priority, insertion order)
// sequence. Callbacks may schedule further events. Single-threaded by
// design — cross-experiment parallelism happens at the harness level.
//
// The kernel is allocation-free in steady state:
//
//   * callbacks are small-buffer inline functions (capture ≤ 48 B,
//     enforced at compile time — a too-large capture is a build error,
//     never a silent heap allocation);
//   * events live in pooled nodes recycled through a free list;
//   * the pending set is a two-level calendar queue: a 16384-bucket wheel
//     (64-tick-wide buckets, ~1 µs horizon — wider than Tset, so every
//     device-timing event hits the wheel) plus an overflow list for
//     events beyond the horizon, migrated in when the wheel drains.
//
// Ordering guarantee: events fire in strictly increasing
// (tick, priority, insertion-sequence) order regardless of which level
// they pass through — same-tick ties break by priority, then FIFO.

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "tw/common/assert.hpp"
#include "tw/common/inline_function.hpp"
#include "tw/common/types.hpp"

namespace tw::sim {

/// Scheduling priority for events at the same tick; lower runs first.
enum class Priority : u8 {
  kDeviceComplete = 0,  ///< device/bank completions
  kController = 1,      ///< memory-controller scheduling decisions
  kCpu = 2,             ///< CPU progress
  kDefault = 3,
};

/// Discrete-event simulator with a monotonically advancing clock.
class Simulator {
 public:
  /// Inline capture budget for event callbacks. Large state (e.g. a full
  /// MemoryRequest) must live in pooled component state with the callback
  /// capturing an index — see Controller's read-slot pool.
  static constexpr std::size_t kCallbackCapacity = 48;

  /// Move-only inline callback; oversized captures fail to compile.
  using Callback = BasicInlineFunction<kCallbackCapacity, false>;

  /// Invoked immediately before each event's callback runs, with the
  /// event's tick and the running executed-event count. Used by the
  /// verify subsystem's InvariantMonitor (time-monotonicity checking,
  /// per-event invariant hooks) and by tracing tools.
  using Observer = std::function<void(Tick now, u64 executed)>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Install (or clear, with nullptr) the per-event observer. An unset
  /// observer costs one predicted-not-taken branch per event.
  void set_observer(Observer obs) { observer_ = std::move(obs); }

  /// Current simulated time.
  Tick now() const { return now_; }

  /// Schedule `fn` at absolute tick `at` (must be >= now()).
  void schedule_at(Tick at, Callback fn,
                   Priority prio = Priority::kDefault);

  /// Schedule `fn` after `delay` ticks from now.
  void schedule_in(Tick delay, Callback fn,
                   Priority prio = Priority::kDefault) {
    schedule_at(now_ + delay, std::move(fn), prio);
  }

  /// Run until the event queue is empty or `limit` is reached.
  /// Returns the number of events executed.
  u64 run(Tick limit = kTickMax);

  /// Execute exactly one event (if any). Returns false when queue empty.
  bool step();

  /// Number of pending events.
  std::size_t pending() const { return pending_; }

  /// Tick of the earliest pending event without executing it, or
  /// kTickMax when the queue is empty. Used by the sharded engine to
  /// fast-forward over idle windows.
  Tick next_tick() const;

  /// Total events executed so far.
  u64 executed() const { return executed_; }

  /// Drop all pending events (used by tests).
  void clear();

 private:
  // Calendar-queue geometry. Bucket width 2^6 ticks (64 ps) keeps bucket
  // occupancy near one event even for dense completion bursts, and 2^14
  // buckets give a ~1 µs horizon: every PCM device delay (Tset = 430 ns
  // is the longest) lands in the wheel; only long CPU gaps and test
  // constructions overflow to the far list.
  static constexpr u32 kWidthShift = 6;
  static constexpr u32 kBucketBits = 14;
  static constexpr u32 kNumBuckets = 1u << kBucketBits;
  static constexpr u32 kBucketMask = kNumBuckets - 1;
  static constexpr u32 kChunkNodes = 128;  ///< pool growth granularity

  struct EventNode {
    Tick tick = 0;
    u64 order = 0;  ///< (priority << 56) | insertion seq: same-tick order
    EventNode* next = nullptr;
    Callback fn;
  };

  static constexpr u64 day_of(Tick t) { return t >> kWidthShift; }

  EventNode* alloc_node();
  void free_node(EventNode* n);
  void insert(EventNode* n);
  void bucket_insert(EventNode* n, u32 b);
  /// Unlink and return the earliest event with tick <= limit, or nullptr.
  EventNode* pop_earliest(Tick limit);
  /// Move far-list events whose day entered the wheel window into buckets.
  void migrate_far();
  /// First set bucket at circular offset in [0, span) from `start`, or
  /// `span` when none.
  u32 find_set_offset(u32 start, u32 span) const;
  void fire(EventNode* n);

  // Level 1: the wheel. One unsorted intrusive list per bucket; every
  // node in a bucket shares the same "day" (tick >> kWidthShift), so the
  // first nonempty bucket at or after now holds the earliest events.
  std::array<EventNode*, kNumBuckets> buckets_{};
  std::array<u64, kNumBuckets / 64> bucket_bits_{};
  u64 wheel_base_day_ = 0;  ///< wheel window covers [base, base + 16384) days
  u64 min_day_hint_ = 0;    ///< no pending wheel event has day < hint

  // Level 2: far events (day >= base + 256), unsorted, with cached min.
  EventNode* far_ = nullptr;
  Tick far_min_tick_ = kTickMax;

  // Node pool: chunked storage + LIFO free list (hot nodes recycle first).
  std::vector<std::unique_ptr<EventNode[]>> chunks_;
  EventNode* free_ = nullptr;

  Tick now_ = 0;
  u64 seq_ = 0;
  u64 executed_ = 0;
  std::size_t pending_ = 0;
  Observer observer_;
};

/// A fixed-frequency clock domain layered on the picosecond timebase.
class Clock {
 public:
  /// period: ticks per cycle (e.g. 500 ps for a 2 GHz core).
  explicit constexpr Clock(Tick period) : period_(period) {
    // A zero period would make cycle arithmetic divide by zero.
  }

  constexpr Tick period() const { return period_; }
  constexpr double freq_ghz() const {
    return 1000.0 / static_cast<double>(period_);
  }

  /// Cycles elapsed at tick t (floor).
  constexpr u64 cycles_at(Tick t) const { return t / period_; }

  /// Tick of the start of cycle c.
  constexpr Tick tick_of(u64 cycle) const { return cycle * period_; }

  /// Ticks for n cycles.
  constexpr Tick cycles(u64 n) const { return n * period_; }

  /// The first clock edge at or after tick t.
  constexpr Tick next_edge(Tick t) const {
    return ceil_div(t, period_) * period_;
  }

 private:
  Tick period_;
};

}  // namespace tw::sim
